// Package vclock provides a deterministic virtual clock and a
// discrete-event scheduler. The control- and management-plane failure
// replays (the FLINK-12342 container storm, token expiration, monitor
// kills) are timing-dependent; running them on a virtual clock makes
// the reproductions exact and instantaneous instead of wall-clock
// bound and flaky.
package vclock

import "container/heap"

// Sim is a discrete-event simulator. Time is in virtual milliseconds
// starting at zero. Sim is not safe for concurrent use: simulated
// "concurrency" is expressed by scheduling events, as in any
// discrete-event simulation.
type Sim struct {
	now    int64
	seq    int64
	events eventQueue
}

// New returns a simulator at time zero.
func New() *Sim { return &Sim{} }

// Now returns the current virtual time in milliseconds.
func (s *Sim) Now() int64 { return s.now }

// After schedules fn to run delay milliseconds from now. Events at the
// same instant run in scheduling order. It returns a handle that can
// cancel the event.
func (s *Sim) After(delay int64, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	ev := &event{at: s.now + delay, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, ev)
	return &Timer{ev: ev}
}

// Every schedules fn to run every interval milliseconds, starting one
// interval from now, until the returned timer is stopped.
func (s *Sim) Every(interval int64, fn func()) *Timer {
	if interval <= 0 {
		interval = 1
	}
	t := &Timer{}
	var tick func()
	tick = func() {
		if t.stopped {
			return
		}
		fn()
		if t.stopped {
			return
		}
		t.ev = s.After(interval, tick).ev
	}
	t.ev = s.After(interval, tick).ev
	return t
}

// Run processes events until the queue is empty or virtual time would
// exceed until. It returns the number of events processed.
func (s *Sim) Run(until int64) int {
	n := 0
	for s.events.Len() > 0 {
		ev := s.events[0]
		if ev.at > until {
			break
		}
		heap.Pop(&s.events)
		if ev.cancelled {
			continue
		}
		s.now = ev.at
		ev.fn()
		n++
	}
	if s.now < until {
		s.now = until
	}
	return n
}

// RunLimit is Run with an event budget: it stops after processing
// maxEvents events and reports whether the budget was exhausted before
// the horizon. A workload that keeps scheduling work at the current
// instant (a zero-delay retry loop, a self-rescheduling reconciler)
// would otherwise spin Run forever without ever advancing time; the
// load engine runs under RunLimit so a runaway retry storm fails
// loudly instead of hanging the suite.
func (s *Sim) RunLimit(until int64, maxEvents int) (n int, exhausted bool) {
	for s.events.Len() > 0 {
		ev := s.events[0]
		if ev.at > until {
			break
		}
		heap.Pop(&s.events)
		if ev.cancelled {
			continue
		}
		if n >= maxEvents {
			// Put the event back: the caller may inspect or resume.
			heap.Push(&s.events, ev)
			return n, true
		}
		s.now = ev.at
		ev.fn()
		n++
	}
	if s.now < until {
		s.now = until
	}
	return n, false
}

// NextAt returns the virtual time of the next live event, or -1 when
// the queue is empty. Cancelled events at the head are discarded. It
// lets a step-driven monitor (the partition fault plane's guided
// injector) process exactly the events inside a horizon.
func (s *Sim) NextAt() int64 {
	for s.events.Len() > 0 {
		if s.events[0].cancelled {
			heap.Pop(&s.events)
			continue
		}
		return s.events[0].at
	}
	return -1
}

// Step processes exactly one pending event, returning false when the
// queue is empty.
func (s *Sim) Step() bool {
	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(*event)
		if ev.cancelled {
			continue
		}
		s.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// Pending returns the number of live scheduled events.
func (s *Sim) Pending() int {
	n := 0
	for _, ev := range s.events {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// Timer is a handle to a scheduled event.
type Timer struct {
	ev      *event
	stopped bool
}

// Stop cancels the event (and, for Every timers, all future ticks).
func (t *Timer) Stop() {
	t.stopped = true
	if t.ev != nil {
		t.ev.cancelled = true
	}
}

type event struct {
	at        int64
	seq       int64
	fn        func()
	cancelled bool
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
