package vclock

import "testing"

// BenchmarkEventThroughput measures the discrete-event scheduler's
// per-event cost — the budget the control-plane replays spend.
func BenchmarkEventThroughput(b *testing.B) {
	b.ReportAllocs()
	s := New()
	for i := 0; i < b.N; i++ {
		s.After(int64(i%1000), func() {})
		if i%1000 == 999 {
			s.Run(s.Now() + 1000)
		}
	}
	s.Run(s.Now() + 1000)
}

// BenchmarkNestedScheduling measures cascading event chains.
func BenchmarkNestedScheduling(b *testing.B) {
	s := New()
	depth := 0
	var chain func()
	chain = func() {
		depth++
		if depth%100 != 0 {
			s.After(1, chain)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		depth = 0
		s.After(1, chain)
		s.Run(s.Now() + 200)
	}
}
