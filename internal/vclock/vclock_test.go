package vclock

import "testing"

func TestAfterOrdering(t *testing.T) {
	s := New()
	var got []int
	s.After(30, func() { got = append(got, 3) })
	s.After(10, func() { got = append(got, 1) })
	s.After(20, func() { got = append(got, 2) })
	s.Run(100)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
	if s.Now() != 100 {
		t.Errorf("now = %d", s.Now())
	}
}

func TestSameInstantRunsInScheduleOrder(t *testing.T) {
	s := New()
	var got []int
	s.After(5, func() { got = append(got, 1) })
	s.After(5, func() { got = append(got, 2) })
	s.Run(5)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("order = %v", got)
	}
}

func TestRunStopsAtHorizon(t *testing.T) {
	s := New()
	fired := false
	s.After(50, func() { fired = true })
	n := s.Run(49)
	if n != 0 || fired {
		t.Error("event beyond horizon fired")
	}
	s.Run(50)
	if !fired {
		t.Error("event at horizon did not fire")
	}
}

func TestEvery(t *testing.T) {
	s := New()
	count := 0
	timer := s.Every(10, func() {
		count++
		if count == 3 {
			// Stop from within the callback.
			return
		}
	})
	s.Run(35)
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
	timer.Stop()
	s.After(100, func() {}) // keep the queue busy past the tick
	s.Run(200)
	if count != 3 {
		t.Errorf("ticks after Stop: count = %d", count)
	}
}

func TestTimerStopCancelsPending(t *testing.T) {
	s := New()
	fired := false
	timer := s.After(10, func() { fired = true })
	timer.Stop()
	s.Run(100)
	if fired {
		t.Error("stopped timer fired")
	}
	if s.Pending() != 0 {
		t.Errorf("pending = %d", s.Pending())
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var got []int64
	s.After(10, func() {
		got = append(got, s.Now())
		s.After(5, func() { got = append(got, s.Now()) })
	})
	s.Run(100)
	if len(got) != 2 || got[0] != 10 || got[1] != 15 {
		t.Errorf("times = %v", got)
	}
}

func TestStep(t *testing.T) {
	s := New()
	count := 0
	s.After(10, func() { count++ })
	s.After(20, func() { count++ })
	if !s.Step() || count != 1 || s.Now() != 10 {
		t.Errorf("after first step: count=%d now=%d", count, s.Now())
	}
	if !s.Step() || count != 2 {
		t.Errorf("after second step: count=%d", count)
	}
	if s.Step() {
		t.Error("step on empty queue should return false")
	}
}

func TestNegativeDelayRunsImmediately(t *testing.T) {
	s := New()
	s.Run(10)
	fired := false
	s.After(-5, func() { fired = true })
	s.Run(10)
	if !fired {
		t.Error("negative delay should clamp to now")
	}
	if s.Now() != 10 {
		t.Errorf("time moved backwards: %d", s.Now())
	}
}

// TestNextAtPeeksWithoutAdvancing pins the step-driven monitor's
// contract: NextAt reports the next live event time without running
// anything, skips cancelled timers, and returns -1 on an empty queue.
func TestNextAtPeeksWithoutAdvancing(t *testing.T) {
	s := New()
	fired := false
	cancelled := s.After(10, func() {})
	s.After(20, func() { fired = true })
	cancelled.Stop()

	if got := s.NextAt(); got != 20 {
		t.Errorf("NextAt = %d, want 20 (the cancelled timer at 10 must be skipped)", got)
	}
	if s.Now() != 0 || fired {
		t.Error("NextAt must not advance the clock or run events")
	}
	if !s.Step() {
		t.Fatal("Step found nothing despite NextAt reporting an event")
	}
	if s.Now() != 20 || !fired {
		t.Errorf("Step landed at %d fired=%v, want 20/true", s.Now(), fired)
	}
	if got := s.NextAt(); got != -1 {
		t.Errorf("NextAt on an empty queue = %d, want -1", got)
	}
}
