package vclock

import "testing"

// TestRunLimitStopsRunawayLoop pins the load engine's safety net: a
// zero-delay self-rescheduling callback never advances virtual time,
// and RunLimit must cut it off at the budget instead of spinning.
func TestRunLimitStopsRunawayLoop(t *testing.T) {
	s := New()
	var loop func()
	fired := 0
	loop = func() {
		fired++
		s.After(0, loop)
	}
	s.After(0, loop)
	n, exhausted := s.RunLimit(1000, 50)
	if !exhausted {
		t.Fatal("a zero-delay loop did not exhaust the budget")
	}
	if n != 50 || fired != 50 {
		t.Errorf("processed %d events, callbacks fired %d, want 50/50", n, fired)
	}
	if s.Now() != 0 {
		t.Errorf("virtual time advanced to %d through a zero-delay loop", s.Now())
	}
}

// TestRunLimitUnderBudget: a finite workload inside the budget behaves
// exactly like Run — all events fire, time lands on the horizon.
func TestRunLimitUnderBudget(t *testing.T) {
	s := New()
	fired := 0
	for i := int64(1); i <= 5; i++ {
		s.After(i*10, func() { fired++ })
	}
	n, exhausted := s.RunLimit(100, 1000)
	if exhausted {
		t.Fatal("finite workload reported exhaustion")
	}
	if n != 5 || fired != 5 {
		t.Errorf("processed %d, fired %d, want 5/5", n, fired)
	}
	if s.Now() != 100 {
		t.Errorf("Now() = %d after the horizon, want 100", s.Now())
	}
}

// TestRunLimitResumable pins the put-the-event-back contract: after an
// exhausted RunLimit, the interrupted event is still queued and a
// second call picks up exactly where the first stopped.
func TestRunLimitResumable(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 6; i++ {
		i := i
		s.After(int64(i+1), func() { order = append(order, i) })
	}
	n, exhausted := s.RunLimit(100, 3)
	if !exhausted || n != 3 {
		t.Fatalf("first leg: n=%d exhausted=%v, want 3/true", n, exhausted)
	}
	n, exhausted = s.RunLimit(100, 100)
	if exhausted || n != 3 {
		t.Fatalf("second leg: n=%d exhausted=%v, want 3/false", n, exhausted)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("order = %v, want 0..5 in sequence", order)
		}
	}
}
