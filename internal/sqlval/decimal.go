package sqlval

import (
	"fmt"
	"strings"
)

// Decimal is a fixed-point decimal value stored as an unscaled 64-bit
// integer plus a scale: the represented value is Unscaled * 10^-Scale.
// The maximum supported precision is 18 digits, which covers the DDL
// range exercised by the case study.
type Decimal struct {
	Unscaled int64
	Scale    int
}

// MaxDecimalPrecision is the widest precision representable in an
// int64-backed Decimal.
const MaxDecimalPrecision = 18

var pow10 = [...]int64{
	1, 10, 100, 1000, 10000, 100000, 1000000, 10000000, 100000000,
	1000000000, 10000000000, 100000000000, 1000000000000, 10000000000000,
	100000000000000, 1000000000000000, 10000000000000000, 100000000000000000,
	1000000000000000000,
}

// Pow10 returns 10^n for 0 <= n <= 18.
func Pow10(n int) int64 {
	if n < 0 || n >= len(pow10) {
		panic(fmt.Sprintf("sqlval: Pow10(%d) out of range", n))
	}
	return pow10[n]
}

// ParseDecimal parses a decimal literal such as "-12.345". The resulting
// scale equals the number of fractional digits written.
func ParseDecimal(s string) (Decimal, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Decimal{}, fmt.Errorf("sqlval: empty decimal literal")
	}
	neg := false
	switch s[0] {
	case '+':
		s = s[1:]
	case '-':
		neg = true
		s = s[1:]
	}
	intPart, fracPart := s, ""
	if i := strings.IndexByte(s, '.'); i >= 0 {
		intPart, fracPart = s[:i], s[i+1:]
	}
	if intPart == "" && fracPart == "" {
		return Decimal{}, fmt.Errorf("sqlval: malformed decimal literal %q", s)
	}
	digits := intPart + fracPart
	if len(digits) > MaxDecimalPrecision {
		// Drop leading zeros before declaring overflow.
		trimmed := strings.TrimLeft(digits, "0")
		if len(trimmed) > MaxDecimalPrecision {
			return Decimal{}, fmt.Errorf("sqlval: decimal literal %q exceeds precision %d", s, MaxDecimalPrecision)
		}
	}
	var unscaled int64
	for _, c := range digits {
		if c < '0' || c > '9' {
			return Decimal{}, fmt.Errorf("sqlval: malformed decimal literal %q", s)
		}
		unscaled = unscaled*10 + int64(c-'0')
	}
	if neg {
		unscaled = -unscaled
	}
	return Decimal{Unscaled: unscaled, Scale: len(fracPart)}, nil
}

// Precision returns the number of significant digits in the decimal,
// counting at least Scale+1 so that 0.00 has precision 3.
func (d Decimal) Precision() int {
	u := d.Unscaled
	if u < 0 {
		u = -u
	}
	digits := 1
	for u >= 10 {
		u /= 10
		digits++
	}
	if digits < d.Scale+1 {
		digits = d.Scale + 1
	}
	return digits
}

// String renders the decimal with exactly Scale fractional digits.
func (d Decimal) String() string {
	u := d.Unscaled
	neg := u < 0
	if neg {
		u = -u
	}
	if d.Scale == 0 {
		if neg {
			return fmt.Sprintf("-%d", u)
		}
		return fmt.Sprintf("%d", u)
	}
	p := Pow10(d.Scale)
	intPart, fracPart := u/p, u%p
	sign := ""
	if neg {
		sign = "-"
	}
	return fmt.Sprintf("%s%d.%0*d", sign, intPart, d.Scale, fracPart)
}

// Float64 returns the approximate floating-point value of the decimal.
func (d Decimal) Float64() float64 {
	return float64(d.Unscaled) / float64(Pow10(d.Scale))
}

// Rescale converts the decimal to the target scale. Increasing the scale
// multiplies the unscaled value; decreasing it truncates toward zero and
// reports whether any fractional digits were lost.
func (d Decimal) Rescale(scale int) (out Decimal, lost bool, err error) {
	switch {
	case scale == d.Scale:
		return d, false, nil
	case scale > d.Scale:
		shift := scale - d.Scale
		if shift >= len(pow10) {
			return Decimal{}, false, fmt.Errorf("sqlval: rescale shift %d too large", shift)
		}
		m := Pow10(shift)
		u := d.Unscaled * m
		if d.Unscaled != 0 && u/m != d.Unscaled {
			return Decimal{}, false, fmt.Errorf("sqlval: decimal %s overflows at scale %d", d, scale)
		}
		return Decimal{Unscaled: u, Scale: scale}, false, nil
	default:
		shift := d.Scale - scale
		m := Pow10(shift)
		q, r := d.Unscaled/m, d.Unscaled%m
		return Decimal{Unscaled: q, Scale: scale}, r != 0, nil
	}
}

// FitsIn reports whether the decimal can be represented exactly as
// DECIMAL(precision, scale): rescaling must lose no fractional digits
// and the result must fit the precision.
func (d Decimal) FitsIn(precision, scale int) bool {
	r, lost, err := d.Rescale(scale)
	if err != nil || lost {
		return false
	}
	return r.Precision() <= precision || r.Unscaled == 0
}

// Cmp compares two decimals numerically, returning -1, 0 or +1.
func (d Decimal) Cmp(o Decimal) int {
	// Compare at the wider scale; fall back to float on overflow, which
	// only loses precision beyond 18 digits.
	scale := d.Scale
	if o.Scale > scale {
		scale = o.Scale
	}
	a, _, errA := d.Rescale(scale)
	b, _, errB := o.Rescale(scale)
	if errA != nil || errB != nil {
		fa, fb := d.Float64(), o.Float64()
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	}
	switch {
	case a.Unscaled < b.Unscaled:
		return -1
	case a.Unscaled > b.Unscaled:
		return 1
	default:
		return 0
	}
}
