package sqlval

import (
	"testing"
	"testing/quick"
)

func TestParseDecimal(t *testing.T) {
	cases := []struct {
		in       string
		unscaled int64
		scale    int
	}{
		{"0", 0, 0},
		{"1", 1, 0},
		{"-1", -1, 0},
		{"12.34", 1234, 2},
		{"-12.34", -1234, 2},
		{"0.001", 1, 3},
		{"+7.5", 75, 1},
		{"100.", 100, 0},
		{".5", 5, 1},
	}
	for _, c := range cases {
		d, err := ParseDecimal(c.in)
		if err != nil {
			t.Fatalf("ParseDecimal(%q): %v", c.in, err)
		}
		if d.Unscaled != c.unscaled || d.Scale != c.scale {
			t.Errorf("ParseDecimal(%q) = {%d, %d}, want {%d, %d}", c.in, d.Unscaled, d.Scale, c.unscaled, c.scale)
		}
	}
}

func TestParseDecimalErrors(t *testing.T) {
	for _, in := range []string{"", "abc", "1.2.3", ".", "12345678901234567890", "--5"} {
		if _, err := ParseDecimal(in); err == nil {
			t.Errorf("ParseDecimal(%q): expected error", in)
		}
	}
}

func TestDecimalString(t *testing.T) {
	cases := []struct {
		d    Decimal
		want string
	}{
		{Decimal{1234, 2}, "12.34"},
		{Decimal{-1234, 2}, "-12.34"},
		{Decimal{5, 3}, "0.005"},
		{Decimal{-5, 3}, "-0.005"},
		{Decimal{42, 0}, "42"},
		{Decimal{0, 2}, "0.00"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestDecimalStringParseRoundTrip(t *testing.T) {
	f := func(unscaled int64, scale uint8) bool {
		s := int(scale % 10)
		d := Decimal{Unscaled: unscaled % Pow10(17), Scale: s}
		parsed, err := ParseDecimal(d.String())
		if err != nil {
			return false
		}
		return parsed.Cmp(d) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecimalRescale(t *testing.T) {
	d := Decimal{1234, 2} // 12.34
	up, lost, err := d.Rescale(4)
	if err != nil || lost || up.Unscaled != 123400 || up.Scale != 4 {
		t.Fatalf("Rescale up = %+v lost=%v err=%v", up, lost, err)
	}
	down, lost, err := d.Rescale(1)
	if err != nil || !lost || down.Unscaled != 123 {
		t.Fatalf("Rescale down = %+v lost=%v err=%v", down, lost, err)
	}
	exact, lost, err := Decimal{1230, 2}.Rescale(1)
	if err != nil || lost || exact.Unscaled != 123 {
		t.Fatalf("Rescale exact down = %+v lost=%v err=%v", exact, lost, err)
	}
	if _, _, err := (Decimal{Pow10(17), 0}).Rescale(5); err == nil {
		t.Error("expected overflow on huge rescale")
	}
}

func TestDecimalPrecisionAndFits(t *testing.T) {
	if p := (Decimal{1234, 2}).Precision(); p != 4 {
		t.Errorf("precision = %d, want 4", p)
	}
	if p := (Decimal{0, 2}).Precision(); p != 3 {
		t.Errorf("precision of 0.00 = %d, want 3", p)
	}
	if !(Decimal{123, 2}).FitsIn(5, 2) {
		t.Error("1.23 should fit DECIMAL(5,2)")
	}
	if (Decimal{123456, 5}).FitsIn(5, 2) {
		t.Error("1.23456 should not fit DECIMAL(5,2) exactly")
	}
	if !(Decimal{99999, 2}).FitsIn(5, 2) {
		t.Error("999.99 should fit DECIMAL(5,2)")
	}
	if (Decimal{1000000, 2}).FitsIn(5, 2) {
		t.Error("10000.00 should not fit DECIMAL(5,2)")
	}
}

func TestDecimalCmp(t *testing.T) {
	a := Decimal{1234, 2}  // 12.34
	b := Decimal{12340, 3} // 12.340
	if a.Cmp(b) != 0 {
		t.Error("12.34 != 12.340")
	}
	c := Decimal{1235, 2}
	if a.Cmp(c) != -1 || c.Cmp(a) != 1 {
		t.Error("ordering wrong")
	}
}

func TestDecimalCmpProperty(t *testing.T) {
	f := func(a, b int32, sa, sb uint8) bool {
		da := Decimal{Unscaled: int64(a), Scale: int(sa % 6)}
		db := Decimal{Unscaled: int64(b), Scale: int(sb % 6)}
		got := da.Cmp(db)
		fa, fb := da.Float64(), db.Float64()
		switch {
		case fa < fb:
			return got == -1
		case fa > fb:
			return got == 1
		default:
			return got == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
