package sqlval

import (
	"bytes"
	"fmt"
	"math"
	"strings"
)

// Value is a typed SQL value. Exactly one payload field is meaningful,
// selected by Type.Kind; Null values carry only their type.
//
// Representation:
//   - BOOLEAN: B
//   - TINYINT..BIGINT: I
//   - FLOAT/DOUBLE: F
//   - DECIMAL: D
//   - STRING/CHAR/VARCHAR: S
//   - BINARY: Bytes
//   - DATE: I (days since 1970-01-01, proleptic Gregorian)
//   - TIMESTAMP: I (microseconds since 1970-01-01T00:00:00, no zone)
//   - ARRAY: List
//   - MAP: Keys/Vals parallel slices in insertion order
//   - STRUCT: FieldVals parallel to Type.Fields
type Value struct {
	Type Type
	Null bool

	B     bool
	I     int64
	F     float64
	D     Decimal
	S     string
	Bytes []byte

	List      []Value
	Keys      []Value
	Vals      []Value
	FieldVals []Value
}

// NullOf returns the NULL value of the given type.
func NullOf(t Type) Value { return Value{Type: t, Null: true} }

// BoolVal returns a BOOLEAN value.
func BoolVal(b bool) Value { return Value{Type: Boolean, B: b} }

// IntVal returns a value of the given integral kind. The caller is
// responsible for range checking; use Cast for checked conversion.
func IntVal(t Type, v int64) Value { return Value{Type: t, I: v} }

// FloatVal returns a FLOAT value (stored as float64, rounded to float32
// precision to model the narrower type).
func FloatVal(f float64) Value {
	return Value{Type: Float, F: float64(float32(f))}
}

// DoubleVal returns a DOUBLE value.
func DoubleVal(f float64) Value { return Value{Type: Double, F: f} }

// DecimalVal returns a DECIMAL(p,s) value. The decimal is stored as-is;
// use Cast to coerce into a declared precision/scale.
func DecimalVal(d Decimal, precision int) Value {
	return Value{Type: DecimalType(precision, d.Scale), D: d}
}

// StringVal returns a STRING value.
func StringVal(s string) Value { return Value{Type: String, S: s} }

// CharVal returns a CHAR(n) value without padding or truncation.
func CharVal(s string, n int) Value { return Value{Type: CharType(n), S: s} }

// VarcharVal returns a VARCHAR(n) value without truncation.
func VarcharVal(s string, n int) Value { return Value{Type: VarcharType(n), S: s} }

// BinaryVal returns a BINARY value.
func BinaryVal(b []byte) Value { return Value{Type: Binary, Bytes: b} }

// DateVal returns a DATE value from days since the Unix epoch.
func DateVal(days int64) Value { return Value{Type: Date, I: days} }

// TimestampVal returns a TIMESTAMP value from microseconds since epoch.
func TimestampVal(micros int64) Value { return Value{Type: Timestamp, I: micros} }

// ArrayVal returns an ARRAY<elem> value.
func ArrayVal(elem Type, items ...Value) Value {
	return Value{Type: ArrayType(elem), List: items}
}

// MapVal returns a MAP<k,v> value with parallel key/value slices.
func MapVal(key, val Type, keys, vals []Value) Value {
	return Value{Type: MapType(key, val), Keys: keys, Vals: vals}
}

// StructVal returns a STRUCT value whose field values parallel t.Fields.
func StructVal(t Type, fieldVals ...Value) Value {
	return Value{Type: t, FieldVals: fieldVals}
}

// IsNaN reports whether a floating value is NaN.
func (v Value) IsNaN() bool {
	return (v.Type.Kind == KindFloat || v.Type.Kind == KindDouble) && math.IsNaN(v.F)
}

// String renders the value for logs and differential comparison. NULL
// renders as "NULL"; strings are quoted; nested values render in Hive's
// display syntax.
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.Type.Kind {
	case KindBoolean:
		if v.B {
			return "true"
		}
		return "false"
	case KindTinyInt, KindSmallInt, KindInt, KindBigInt:
		return fmt.Sprintf("%d", v.I)
	case KindFloat, KindDouble:
		if math.IsNaN(v.F) {
			return "NaN"
		}
		if math.IsInf(v.F, 1) {
			return "Infinity"
		}
		if math.IsInf(v.F, -1) {
			return "-Infinity"
		}
		return fmt.Sprintf("%g", v.F)
	case KindDecimal:
		return v.D.String()
	case KindString, KindChar, KindVarchar:
		return fmt.Sprintf("%q", v.S)
	case KindBinary:
		return fmt.Sprintf("X'%X'", v.Bytes)
	case KindDate:
		return FormatDate(v.I)
	case KindTimestamp:
		return FormatTimestamp(v.I)
	case KindArray:
		var b strings.Builder
		b.WriteByte('[')
		for i, e := range v.List {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(e.String())
		}
		b.WriteByte(']')
		return b.String()
	case KindMap:
		var b strings.Builder
		b.WriteByte('{')
		for i := range v.Keys {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(v.Keys[i].String())
			b.WriteByte(':')
			b.WriteString(v.Vals[i].String())
		}
		b.WriteByte('}')
		return b.String()
	case KindStruct:
		var b strings.Builder
		b.WriteByte('{')
		for i, f := range v.Type.Fields {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(f.Name)
			b.WriteByte(':')
			if i < len(v.FieldVals) {
				b.WriteString(v.FieldVals[i].String())
			}
		}
		b.WriteByte('}')
		return b.String()
	default:
		return "NULL"
	}
}

// Equal reports deep value equality, requiring equal types. Two NULLs of
// the same type are equal; NaN equals NaN (so differential comparison
// does not flag NaN round-trips).
func (v Value) Equal(o Value) bool {
	if !v.Type.Equal(o.Type) {
		return false
	}
	return v.EqualData(o)
}

// EqualData reports payload equality ignoring declared type parameters
// (so an INT 5 equals a BIGINT 5 only if kinds match, but DECIMAL values
// compare numerically and character values compare by content). It is
// the comparison used by the write-read oracle, which tolerates type
// re-declaration but not data change.
func (v Value) EqualData(o Value) bool {
	if v.Null || o.Null {
		return v.Null == o.Null
	}
	a, b := v.Type.Kind, o.Type.Kind
	if v.Type.IsCharacter() && o.Type.IsCharacter() {
		return v.S == o.S
	}
	if v.Type.IsIntegral() && o.Type.IsIntegral() {
		return v.I == o.I
	}
	if a != b {
		return false
	}
	switch a {
	case KindBoolean:
		return v.B == o.B
	case KindFloat, KindDouble:
		if math.IsNaN(v.F) && math.IsNaN(o.F) {
			return true
		}
		return v.F == o.F
	case KindDecimal:
		return v.D.Cmp(o.D) == 0
	case KindBinary:
		return bytes.Equal(v.Bytes, o.Bytes)
	case KindDate, KindTimestamp:
		return v.I == o.I
	case KindArray:
		if len(v.List) != len(o.List) {
			return false
		}
		for i := range v.List {
			if !v.List[i].EqualData(o.List[i]) {
				return false
			}
		}
		return true
	case KindMap:
		if len(v.Keys) != len(o.Keys) {
			return false
		}
		for i := range v.Keys {
			if !v.Keys[i].EqualData(o.Keys[i]) || !v.Vals[i].EqualData(o.Vals[i]) {
				return false
			}
		}
		return true
	case KindStruct:
		if len(v.FieldVals) != len(o.FieldVals) {
			return false
		}
		for i := range v.FieldVals {
			if !v.FieldVals[i].EqualData(o.FieldVals[i]) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// Clone returns a deep copy of the value; mutating the copy never
// affects the original.
func (v Value) Clone() Value {
	out := v
	if v.Bytes != nil {
		out.Bytes = append([]byte(nil), v.Bytes...)
	}
	out.List = cloneSlice(v.List)
	out.Keys = cloneSlice(v.Keys)
	out.Vals = cloneSlice(v.Vals)
	out.FieldVals = cloneSlice(v.FieldVals)
	return out
}

func cloneSlice(in []Value) []Value {
	if in == nil {
		return nil
	}
	out := make([]Value, len(in))
	for i := range in {
		out[i] = in[i].Clone()
	}
	return out
}

// Row is an ordered tuple of values.
type Row []Value

// Clone deep-copies the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	for i := range r {
		out[i] = r[i].Clone()
	}
	return out
}

// String renders the row as a parenthesized tuple.
func (r Row) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range r {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Equal reports element-wise EqualData across two rows.
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !r[i].EqualData(o[i]) {
			return false
		}
	}
	return true
}
