package sqlval

import "testing"

// BenchmarkCast measures the per-value coercion cost that dominates the
// engines' insert paths, per cast mode.
func BenchmarkCast(b *testing.B) {
	inputs := []struct {
		name string
		v    Value
		to   Type
	}{
		{"int-widen", IntVal(TinyInt, 5), BigInt},
		{"string-to-int", StringVal("12345"), Int},
		{"string-to-decimal", StringVal("123.45"), DecimalType(10, 2)},
		{"string-to-date", StringVal("2021-06-15"), Date},
		{"char-pad", StringVal("ab"), CharType(16)},
	}
	for _, in := range inputs {
		b.Run(in.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Cast(in.v, in.to, CastANSI); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCastLenientFailure measures the silent-NULL path of the
// lenient modes.
func BenchmarkCastLenientFailure(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Cast(StringVal("junk"), Int, CastHive); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseType measures DDL type parsing.
func BenchmarkParseType(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseType("STRUCT<a:INT,b:ARRAY<MAP<STRING,DECIMAL(10,2)>>>"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDateRebase measures the hybrid-calendar reinterpretation.
func BenchmarkDateRebase(b *testing.B) {
	days := DaysFromCivil(1500, 6, 1)
	for i := 0; i < b.N; i++ {
		_ = RebaseGregorianToHybrid(days)
	}
}
