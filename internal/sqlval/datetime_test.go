package sqlval

import (
	"testing"
	"testing/quick"
)

func TestCivilRoundTrip(t *testing.T) {
	cases := []struct {
		y, m, d int
		days    int64
	}{
		{1970, 1, 1, 0},
		{1970, 1, 2, 1},
		{1969, 12, 31, -1},
		{2000, 3, 1, 11017},
		{1582, 10, 15, GregorianCutoverDays},
	}
	for _, c := range cases {
		if got := DaysFromCivil(c.y, c.m, c.d); got != c.days {
			t.Errorf("DaysFromCivil(%d,%d,%d) = %d, want %d", c.y, c.m, c.d, got, c.days)
		}
		y, m, d := CivilFromDays(c.days)
		if y != c.y || m != c.m || d != c.d {
			t.Errorf("CivilFromDays(%d) = %d-%d-%d, want %d-%d-%d", c.days, y, m, d, c.y, c.m, c.d)
		}
	}
}

func TestCivilRoundTripProperty(t *testing.T) {
	f := func(n int32) bool {
		days := int64(n % 1000000)
		y, m, d := CivilFromDays(days)
		return DaysFromCivil(y, m, d) == days
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseDate(t *testing.T) {
	days, err := ParseDate("2021-06-15")
	if err != nil {
		t.Fatal(err)
	}
	if FormatDate(days) != "2021-06-15" {
		t.Errorf("round trip = %q", FormatDate(days))
	}
	for _, bad := range []string{"2021-02-30", "2021-13-01", "2021-00-10", "not-a-date", "2021-2", ""} {
		if _, err := ParseDate(bad); err == nil {
			t.Errorf("ParseDate(%q): expected error", bad)
		}
	}
	// Leap-year handling.
	if _, err := ParseDate("2020-02-29"); err != nil {
		t.Errorf("2020-02-29 should be valid: %v", err)
	}
	if _, err := ParseDate("2100-02-29"); err == nil {
		t.Error("2100-02-29 should be invalid (century non-leap)")
	}
	if _, err := ParseDate("2000-02-29"); err != nil {
		t.Error("2000-02-29 should be valid (400-year leap)")
	}
}

func TestParseTimestamp(t *testing.T) {
	micros, err := ParseTimestamp("1970-01-01 00:00:01")
	if err != nil || micros != MicrosPerSecond {
		t.Fatalf("epoch+1s = %d, %v", micros, err)
	}
	micros, err = ParseTimestamp("2021-06-15 12:30:45.123456")
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatTimestamp(micros); got != "2021-06-15 12:30:45.123456" {
		t.Errorf("round trip = %q", got)
	}
	if got := FormatTimestamp(0); got != "1970-01-01 00:00:00" {
		t.Errorf("epoch = %q", got)
	}
	// Negative timestamps format correctly.
	micros, err = ParseTimestamp("1969-12-31 23:59:59")
	if err != nil {
		t.Fatal(err)
	}
	if micros != -MicrosPerSecond {
		t.Errorf("1969-12-31 23:59:59 = %d", micros)
	}
	if got := FormatTimestamp(micros); got != "1969-12-31 23:59:59" {
		t.Errorf("negative round trip = %q", got)
	}
	for _, bad := range []string{"2021-02-30 00:00:00", "2021-01-01 25:00:00", "2021-01-01 00:61:00", "x"} {
		if _, err := ParseTimestamp(bad); err == nil {
			t.Errorf("ParseTimestamp(%q): expected error", bad)
		}
	}
}

func TestTimestampRoundTripProperty(t *testing.T) {
	f := func(n int64) bool {
		micros := n % (400 * 365 * MicrosPerDay)
		parsed, err := ParseTimestamp(FormatTimestamp(micros))
		return err == nil && parsed == micros
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRebaseIdentityAfterCutover(t *testing.T) {
	for _, days := range []int64{GregorianCutoverDays, 0, 18000, -100000} {
		if got := RebaseGregorianToHybrid(days); got != days {
			t.Errorf("rebase(%d) = %d, want identity", days, got)
		}
	}
}

func TestRebaseShiftsPreCutoverDates(t *testing.T) {
	// 1500-06-01 differs by 10 days between the calendars (the gap is 9
	// days before the Julian leap day 1500-02-29, 10 after).
	days := DaysFromCivil(1500, 6, 1)
	hybrid := RebaseGregorianToHybrid(days)
	if hybrid == days {
		t.Fatal("pre-cutover date should shift")
	}
	if diff := hybrid - days; diff != 10 {
		t.Errorf("1500-06-01 shift = %d days, want 10", diff)
	}
	if diff := RebaseGregorianToHybrid(DaysFromCivil(1500, 1, 1)) - DaysFromCivil(1500, 1, 1); diff != 9 {
		t.Errorf("1500-01-01 shift = %d days, want 9", diff)
	}
	// The rebase round-trips.
	if back := RebaseHybridToGregorian(hybrid); back != days {
		t.Errorf("round trip = %d, want %d", back, days)
	}
}

func TestRebaseRoundTripProperty(t *testing.T) {
	f := func(n int32) bool {
		// Stay within a few millennia before the cutover.
		days := GregorianCutoverDays - 1 - int64(uint32(n)%700000)
		return RebaseHybridToGregorian(RebaseGregorianToHybrid(days)) == days
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
