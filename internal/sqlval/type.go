// Package sqlval implements the SQL value and type system shared by the
// simulated Spark and Hive engines and the serialization formats.
//
// The type lattice covers the types exercised by the paper's §8 case
// study: the integral family (TINYINT through BIGINT), floating point,
// DECIMAL(p,s), the character family (STRING, CHAR(n), VARCHAR(n)),
// BINARY, DATE, TIMESTAMP, BOOLEAN, and the nested types ARRAY, MAP and
// STRUCT. Per-dialect coercion rules live in cast.go.
package sqlval

import (
	"fmt"
	"strings"
)

// Kind enumerates the primitive and nested type constructors.
type Kind int

// The supported kinds, ordered roughly by the widening lattice.
const (
	KindNull Kind = iota
	KindBoolean
	KindTinyInt
	KindSmallInt
	KindInt
	KindBigInt
	KindFloat
	KindDouble
	KindDecimal
	KindString
	KindChar
	KindVarchar
	KindBinary
	KindDate
	KindTimestamp
	KindArray
	KindMap
	KindStruct
)

// String returns the SQL spelling of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBoolean:
		return "BOOLEAN"
	case KindTinyInt:
		return "TINYINT"
	case KindSmallInt:
		return "SMALLINT"
	case KindInt:
		return "INT"
	case KindBigInt:
		return "BIGINT"
	case KindFloat:
		return "FLOAT"
	case KindDouble:
		return "DOUBLE"
	case KindDecimal:
		return "DECIMAL"
	case KindString:
		return "STRING"
	case KindChar:
		return "CHAR"
	case KindVarchar:
		return "VARCHAR"
	case KindBinary:
		return "BINARY"
	case KindDate:
		return "DATE"
	case KindTimestamp:
		return "TIMESTAMP"
	case KindArray:
		return "ARRAY"
	case KindMap:
		return "MAP"
	case KindStruct:
		return "STRUCT"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Field is a named struct member.
type Field struct {
	Name string
	Type Type
}

// Type is a (possibly nested) SQL type. Primitive types carry their
// parameters (precision/scale for DECIMAL, length for CHAR/VARCHAR);
// nested types carry element types. The zero Type is the NULL type.
type Type struct {
	Kind      Kind
	Precision int // DECIMAL precision
	Scale     int // DECIMAL scale
	Length    int // CHAR / VARCHAR declared length

	Elem   *Type   // ARRAY element
	Key    *Type   // MAP key
	Value  *Type   // MAP value
	Fields []Field // STRUCT members
}

// Convenience constructors for the common types.
var (
	Null      = Type{Kind: KindNull}
	Boolean   = Type{Kind: KindBoolean}
	TinyInt   = Type{Kind: KindTinyInt}
	SmallInt  = Type{Kind: KindSmallInt}
	Int       = Type{Kind: KindInt}
	BigInt    = Type{Kind: KindBigInt}
	Float     = Type{Kind: KindFloat}
	Double    = Type{Kind: KindDouble}
	String    = Type{Kind: KindString}
	Binary    = Type{Kind: KindBinary}
	Date      = Type{Kind: KindDate}
	Timestamp = Type{Kind: KindTimestamp}
)

// DecimalType returns DECIMAL(p, s).
func DecimalType(precision, scale int) Type {
	return Type{Kind: KindDecimal, Precision: precision, Scale: scale}
}

// CharType returns CHAR(n).
func CharType(n int) Type { return Type{Kind: KindChar, Length: n} }

// VarcharType returns VARCHAR(n).
func VarcharType(n int) Type { return Type{Kind: KindVarchar, Length: n} }

// ArrayType returns ARRAY<elem>.
func ArrayType(elem Type) Type {
	e := elem
	return Type{Kind: KindArray, Elem: &e}
}

// MapType returns MAP<key, value>.
func MapType(key, value Type) Type {
	k, v := key, value
	return Type{Kind: KindMap, Key: &k, Value: &v}
}

// StructType returns STRUCT<fields...>.
func StructType(fields ...Field) Type {
	return Type{Kind: KindStruct, Fields: fields}
}

// String renders the type in HiveQL/SparkSQL DDL syntax.
func (t Type) String() string {
	switch t.Kind {
	case KindDecimal:
		return fmt.Sprintf("DECIMAL(%d,%d)", t.Precision, t.Scale)
	case KindChar:
		return fmt.Sprintf("CHAR(%d)", t.Length)
	case KindVarchar:
		return fmt.Sprintf("VARCHAR(%d)", t.Length)
	case KindArray:
		return fmt.Sprintf("ARRAY<%s>", t.Elem)
	case KindMap:
		return fmt.Sprintf("MAP<%s,%s>", t.Key, t.Value)
	case KindStruct:
		var b strings.Builder
		b.WriteString("STRUCT<")
		for i, f := range t.Fields {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s:%s", f.Name, f.Type)
		}
		b.WriteString(">")
		return b.String()
	default:
		return t.Kind.String()
	}
}

// Equal reports whether two types are identical, including parameters
// and nested structure. Struct field names are compared case-sensitively;
// dialects that fold case must normalize before comparing.
func (t Type) Equal(o Type) bool {
	if t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case KindDecimal:
		return t.Precision == o.Precision && t.Scale == o.Scale
	case KindChar, KindVarchar:
		return t.Length == o.Length
	case KindArray:
		return t.Elem.Equal(*o.Elem)
	case KindMap:
		return t.Key.Equal(*o.Key) && t.Value.Equal(*o.Value)
	case KindStruct:
		if len(t.Fields) != len(o.Fields) {
			return false
		}
		for i := range t.Fields {
			if t.Fields[i].Name != o.Fields[i].Name || !t.Fields[i].Type.Equal(o.Fields[i].Type) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// IsNumeric reports whether the type belongs to the numeric family.
func (t Type) IsNumeric() bool {
	switch t.Kind {
	case KindTinyInt, KindSmallInt, KindInt, KindBigInt, KindFloat, KindDouble, KindDecimal:
		return true
	}
	return false
}

// IsIntegral reports whether the type is a fixed-width integer type.
func (t Type) IsIntegral() bool {
	switch t.Kind {
	case KindTinyInt, KindSmallInt, KindInt, KindBigInt:
		return true
	}
	return false
}

// IsCharacter reports whether the type is STRING, CHAR or VARCHAR.
func (t Type) IsCharacter() bool {
	switch t.Kind {
	case KindString, KindChar, KindVarchar:
		return true
	}
	return false
}

// IsNested reports whether the type is ARRAY, MAP or STRUCT.
func (t Type) IsNested() bool {
	switch t.Kind {
	case KindArray, KindMap, KindStruct:
		return true
	}
	return false
}

// IntegralRange returns the inclusive [min, max] range of an integral
// kind. It panics on non-integral kinds; callers gate on IsIntegral.
func IntegralRange(k Kind) (min, max int64) {
	switch k {
	case KindTinyInt:
		return -128, 127
	case KindSmallInt:
		return -32768, 32767
	case KindInt:
		return -2147483648, 2147483647
	case KindBigInt:
		return -9223372036854775808, 9223372036854775807
	default:
		panic(fmt.Sprintf("sqlval: IntegralRange on non-integral kind %v", k))
	}
}

// ParseType parses a DDL type spelling such as "DECIMAL(5,2)",
// "ARRAY<INT>" or "MAP<STRING,INT>". It accepts both Hive and Spark
// spellings (BYTE/SHORT are aliases for TINYINT/SMALLINT).
func ParseType(s string) (Type, error) {
	p := &typeParser{src: s}
	t, err := p.parse()
	if err != nil {
		return Null, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return Null, fmt.Errorf("sqlval: trailing input %q in type %q", p.src[p.pos:], s)
	}
	return t, nil
}

type typeParser struct {
	src string
	pos int
}

func (p *typeParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *typeParser) word() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_' {
			p.pos++
			continue
		}
		break
	}
	return p.src[start:p.pos]
}

func (p *typeParser) expect(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != c {
		return fmt.Errorf("sqlval: expected %q at offset %d in type %q", string(c), p.pos, p.src)
	}
	p.pos++
	return nil
}

func (p *typeParser) number() (int, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	if start == p.pos {
		return 0, fmt.Errorf("sqlval: expected number at offset %d in type %q", start, p.src)
	}
	n := 0
	for _, c := range p.src[start:p.pos] {
		n = n*10 + int(c-'0')
	}
	return n, nil
}

func (p *typeParser) parse() (Type, error) {
	w := strings.ToUpper(p.word())
	switch w {
	case "BOOLEAN", "BOOL":
		return Boolean, nil
	case "TINYINT", "BYTE":
		return TinyInt, nil
	case "SMALLINT", "SHORT":
		return SmallInt, nil
	case "INT", "INTEGER":
		return Int, nil
	case "BIGINT", "LONG":
		return BigInt, nil
	case "FLOAT", "REAL":
		return Float, nil
	case "DOUBLE":
		return Double, nil
	case "STRING", "TEXT":
		return String, nil
	case "BINARY":
		return Binary, nil
	case "DATE":
		return Date, nil
	case "TIMESTAMP":
		return Timestamp, nil
	case "DECIMAL", "NUMERIC":
		p.skipSpace()
		if p.pos < len(p.src) && p.src[p.pos] == '(' {
			p.pos++
			prec, err := p.number()
			if err != nil {
				return Null, err
			}
			scale := 0
			p.skipSpace()
			if p.pos < len(p.src) && p.src[p.pos] == ',' {
				p.pos++
				scale, err = p.number()
				if err != nil {
					return Null, err
				}
			}
			if err := p.expect(')'); err != nil {
				return Null, err
			}
			return DecimalType(prec, scale), nil
		}
		return DecimalType(10, 0), nil
	case "CHAR", "VARCHAR":
		if err := p.expect('('); err != nil {
			return Null, err
		}
		n, err := p.number()
		if err != nil {
			return Null, err
		}
		if err := p.expect(')'); err != nil {
			return Null, err
		}
		if w == "CHAR" {
			return CharType(n), nil
		}
		return VarcharType(n), nil
	case "ARRAY":
		if err := p.expect('<'); err != nil {
			return Null, err
		}
		elem, err := p.parse()
		if err != nil {
			return Null, err
		}
		if err := p.expect('>'); err != nil {
			return Null, err
		}
		return ArrayType(elem), nil
	case "MAP":
		if err := p.expect('<'); err != nil {
			return Null, err
		}
		key, err := p.parse()
		if err != nil {
			return Null, err
		}
		if err := p.expect(','); err != nil {
			return Null, err
		}
		val, err := p.parse()
		if err != nil {
			return Null, err
		}
		if err := p.expect('>'); err != nil {
			return Null, err
		}
		return MapType(key, val), nil
	case "STRUCT":
		if err := p.expect('<'); err != nil {
			return Null, err
		}
		var fields []Field
		for {
			name := p.word()
			if name == "" {
				return Null, fmt.Errorf("sqlval: expected field name in struct type %q", p.src)
			}
			if err := p.expect(':'); err != nil {
				return Null, err
			}
			ft, err := p.parse()
			if err != nil {
				return Null, err
			}
			fields = append(fields, Field{Name: name, Type: ft})
			p.skipSpace()
			if p.pos < len(p.src) && p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			break
		}
		if err := p.expect('>'); err != nil {
			return Null, err
		}
		return StructType(fields...), nil
	default:
		return Null, fmt.Errorf("sqlval: unknown type %q", w)
	}
}
