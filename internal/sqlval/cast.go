package sqlval

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// CastMode selects a dialect's coercion behavior. The three modes model
// the store-assignment policies at the heart of several §8.2
// discrepancies: the same value assigned to the same column type yields
// an error, a silent NULL, or a truncated value depending on the engine
// and its configuration.
type CastMode int

const (
	// CastANSI is Spark's ANSI store-assignment policy: invalid or
	// out-of-range input raises a CastError.
	CastANSI CastMode = iota
	// CastLegacy is Spark's legacy policy: invalid input becomes NULL,
	// out-of-range integrals wrap, and overlong strings truncate.
	CastLegacy
	// CastHive is Hive's lenient coercion: invalid or out-of-range input
	// becomes NULL with no feedback.
	CastHive
)

// String names the mode for logs.
func (m CastMode) String() string {
	switch m {
	case CastANSI:
		return "ansi"
	case CastLegacy:
		return "legacy"
	case CastHive:
		return "hive"
	default:
		return fmt.Sprintf("CastMode(%d)", int(m))
	}
}

// CastError reports a failed strict cast. The Code field is a stable
// error class used by the cross-testing framework to cluster failures.
type CastError struct {
	From   Type
	To     Type
	Code   string // e.g. "CAST_OVERFLOW", "CAST_INVALID_INPUT"
	Detail string
}

// Error implements the error interface.
func (e *CastError) Error() string {
	return fmt.Sprintf("cast %s to %s failed [%s]: %s", e.From, e.To, e.Code, e.Detail)
}

func castErr(from, to Type, code, detail string) error {
	return &CastError{From: from, To: to, Code: code, Detail: detail}
}

// Cast converts v to the target type under the given mode. In lenient
// modes invalid input yields a NULL of the target type with a nil
// error; in ANSI mode it yields a *CastError.
func Cast(v Value, to Type, mode CastMode) (Value, error) {
	if v.Null {
		return NullOf(to), nil
	}
	if v.Type.Equal(to) && !to.IsNested() && to.Kind != KindChar && to.Kind != KindVarchar && to.Kind != KindDecimal {
		return v, nil
	}
	out, err := cast(v, to, mode)
	if err != nil {
		if mode == CastANSI {
			return NullOf(to), err
		}
		// Lenient modes convert failures to NULL without feedback.
		return NullOf(to), nil
	}
	return out, nil
}

func cast(v Value, to Type, mode CastMode) (Value, error) {
	switch to.Kind {
	case KindBoolean:
		return castToBoolean(v)
	case KindTinyInt, KindSmallInt, KindInt, KindBigInt:
		return castToIntegral(v, to, mode)
	case KindFloat, KindDouble:
		return castToFloating(v, to, mode)
	case KindDecimal:
		return castToDecimal(v, to)
	case KindString:
		return StringVal(renderForString(v)), nil
	case KindChar:
		return castToChar(v, to, mode)
	case KindVarchar:
		return castToVarchar(v, to, mode)
	case KindBinary:
		return castToBinary(v)
	case KindDate:
		return castToDate(v)
	case KindTimestamp:
		return castToTimestamp(v)
	case KindArray:
		return castToArray(v, to, mode)
	case KindMap:
		return castToMap(v, to, mode)
	case KindStruct:
		return castToStruct(v, to, mode)
	default:
		return Value{}, castErr(v.Type, to, "CAST_UNSUPPORTED", "unsupported target kind")
	}
}

func castToBoolean(v Value) (Value, error) {
	switch v.Type.Kind {
	case KindBoolean:
		return v, nil
	case KindTinyInt, KindSmallInt, KindInt, KindBigInt:
		return BoolVal(v.I != 0), nil
	case KindString, KindChar, KindVarchar:
		switch strings.ToLower(strings.TrimSpace(v.S)) {
		case "true", "t", "1":
			return BoolVal(true), nil
		case "false", "f", "0":
			return BoolVal(false), nil
		}
		return Value{}, castErr(v.Type, Boolean, "CAST_INVALID_INPUT", fmt.Sprintf("%q is not a boolean", v.S))
	default:
		return Value{}, castErr(v.Type, Boolean, "CAST_UNSUPPORTED", "no conversion to BOOLEAN")
	}
}

func castToIntegral(v Value, to Type, mode CastMode) (Value, error) {
	var raw int64
	switch v.Type.Kind {
	case KindBoolean:
		if v.B {
			raw = 1
		}
	case KindTinyInt, KindSmallInt, KindInt, KindBigInt:
		raw = v.I
	case KindFloat, KindDouble:
		if math.IsNaN(v.F) || math.IsInf(v.F, 0) {
			return Value{}, castErr(v.Type, to, "CAST_INVALID_INPUT", "non-finite float to integral")
		}
		if v.F >= 9.223372036854776e18 || v.F < -9.223372036854776e18 {
			return Value{}, castErr(v.Type, to, "CAST_OVERFLOW", "float exceeds BIGINT range")
		}
		raw = int64(v.F)
	case KindDecimal:
		r, _, err := v.D.Rescale(0)
		if err != nil {
			return Value{}, castErr(v.Type, to, "CAST_OVERFLOW", err.Error())
		}
		raw = r.Unscaled
	case KindString, KindChar, KindVarchar:
		n, err := strconv.ParseInt(strings.TrimSpace(v.S), 10, 64)
		if err != nil {
			// Retry as a decimal literal, truncating the fraction, which
			// both engines accept for strings like "3.0".
			d, derr := ParseDecimal(v.S)
			if derr != nil {
				return Value{}, castErr(v.Type, to, "CAST_INVALID_INPUT", fmt.Sprintf("%q is not a number", v.S))
			}
			r, _, rerr := d.Rescale(0)
			if rerr != nil {
				return Value{}, castErr(v.Type, to, "CAST_OVERFLOW", rerr.Error())
			}
			n = r.Unscaled
		}
		raw = n
	case KindDate:
		return Value{}, castErr(v.Type, to, "CAST_UNSUPPORTED", "DATE to integral")
	case KindTimestamp:
		raw = v.I / MicrosPerSecond
	default:
		return Value{}, castErr(v.Type, to, "CAST_UNSUPPORTED", "no conversion to integral")
	}
	min, max := IntegralRange(to.Kind)
	if raw < min || raw > max {
		if mode == CastLegacy {
			// Legacy Spark wraps by truncating to the target width.
			switch to.Kind {
			case KindTinyInt:
				raw = int64(int8(raw))
			case KindSmallInt:
				raw = int64(int16(raw))
			case KindInt:
				raw = int64(int32(raw))
			}
			return IntVal(to, raw), nil
		}
		return Value{}, castErr(v.Type, to, "CAST_OVERFLOW",
			fmt.Sprintf("value %d out of range [%d, %d]", raw, min, max))
	}
	return IntVal(to, raw), nil
}

func castToFloating(v Value, to Type, mode CastMode) (Value, error) {
	mk := func(f float64) Value {
		if to.Kind == KindFloat {
			return FloatVal(f)
		}
		return DoubleVal(f)
	}
	switch v.Type.Kind {
	case KindTinyInt, KindSmallInt, KindInt, KindBigInt:
		return mk(float64(v.I)), nil
	case KindFloat, KindDouble:
		return mk(v.F), nil
	case KindDecimal:
		return mk(v.D.Float64()), nil
	case KindBoolean:
		if v.B {
			return mk(1), nil
		}
		return mk(0), nil
	case KindString, KindChar, KindVarchar:
		s := strings.TrimSpace(v.S)
		switch strings.ToLower(s) {
		case "nan", "infinity", "inf", "+infinity", "-infinity", "-inf":
			// ANSI SQL numeric syntax does not admit the IEEE special
			// spellings; the legacy path accepts them (SPARK-40525).
			if mode == CastANSI {
				return Value{}, castErr(v.Type, to, "CAST_INVALID_INPUT",
					fmt.Sprintf("%q is not a valid ANSI numeric literal", v.S))
			}
			switch strings.ToLower(s) {
			case "nan":
				return mk(math.NaN()), nil
			case "-infinity", "-inf":
				return mk(math.Inf(-1)), nil
			default:
				return mk(math.Inf(1)), nil
			}
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil || math.IsInf(f, 0) {
			return Value{}, castErr(v.Type, to, "CAST_INVALID_INPUT", fmt.Sprintf("%q is not a number", v.S))
		}
		return mk(f), nil
	default:
		return Value{}, castErr(v.Type, to, "CAST_UNSUPPORTED", "no conversion to floating point")
	}
}

func castToDecimal(v Value, to Type) (Value, error) {
	var d Decimal
	switch v.Type.Kind {
	case KindDecimal:
		d = v.D
	case KindTinyInt, KindSmallInt, KindInt, KindBigInt:
		d = Decimal{Unscaled: v.I}
	case KindFloat, KindDouble:
		var err error
		d, err = ParseDecimal(strconv.FormatFloat(v.F, 'f', to.Scale, 64))
		if err != nil {
			return Value{}, castErr(v.Type, to, "CAST_INVALID_INPUT", err.Error())
		}
	case KindString, KindChar, KindVarchar:
		var err error
		d, err = ParseDecimal(v.S)
		if err != nil {
			return Value{}, castErr(v.Type, to, "CAST_INVALID_INPUT", err.Error())
		}
	default:
		return Value{}, castErr(v.Type, to, "CAST_UNSUPPORTED", "no conversion to DECIMAL")
	}
	r, lost, err := d.Rescale(to.Scale)
	if err != nil {
		return Value{}, castErr(v.Type, to, "CAST_OVERFLOW", err.Error())
	}
	if lost {
		return Value{}, castErr(v.Type, to, "CAST_OVERFLOW",
			fmt.Sprintf("value %s has more than %d fractional digits", d, to.Scale))
	}
	if r.Precision() > to.Precision && r.Unscaled != 0 {
		return Value{}, castErr(v.Type, to, "CAST_OVERFLOW",
			fmt.Sprintf("value %s exceeds DECIMAL(%d,%d)", d, to.Precision, to.Scale))
	}
	return Value{Type: to, D: r}, nil
}

// renderForString produces the cast-to-string rendering, which differs
// from Value.String by not quoting character content.
func renderForString(v Value) string {
	if v.Type.IsCharacter() {
		return v.S
	}
	if v.Type.Kind == KindBinary {
		return string(v.Bytes)
	}
	return v.String()
}

func castToChar(v Value, to Type, mode CastMode) (Value, error) {
	s := renderForString(v)
	if len(s) > to.Length {
		trimmed := strings.TrimRight(s, " ")
		if len(trimmed) > to.Length {
			if mode == CastANSI {
				return Value{}, castErr(v.Type, to, "EXCEED_CHAR_LENGTH",
					fmt.Sprintf("input length %d exceeds CHAR(%d)", len(trimmed), to.Length))
			}
			trimmed = trimmed[:to.Length]
		}
		s = trimmed
	}
	// CHAR semantics pad the stored value to the declared length.
	for len(s) < to.Length {
		s += " "
	}
	return Value{Type: to, S: s}, nil
}

func castToVarchar(v Value, to Type, mode CastMode) (Value, error) {
	s := renderForString(v)
	if len(s) > to.Length {
		trimmed := strings.TrimRight(s, " ")
		if len(trimmed) > to.Length {
			if mode == CastANSI {
				return Value{}, castErr(v.Type, to, "EXCEED_VARCHAR_LENGTH",
					fmt.Sprintf("input length %d exceeds VARCHAR(%d)", len(trimmed), to.Length))
			}
			trimmed = trimmed[:to.Length]
		}
		s = trimmed
	}
	return Value{Type: to, S: s}, nil
}

func castToBinary(v Value) (Value, error) {
	switch v.Type.Kind {
	case KindBinary:
		return v, nil
	case KindString, KindChar, KindVarchar:
		return BinaryVal([]byte(v.S)), nil
	default:
		return Value{}, castErr(v.Type, Binary, "CAST_UNSUPPORTED", "no conversion to BINARY")
	}
}

func castToDate(v Value) (Value, error) {
	switch v.Type.Kind {
	case KindDate:
		return v, nil
	case KindTimestamp:
		micros := v.I
		days := micros / MicrosPerDay
		if micros%MicrosPerDay < 0 {
			days--
		}
		return DateVal(days), nil
	case KindString, KindChar, KindVarchar:
		days, err := ParseDate(v.S)
		if err != nil {
			return Value{}, castErr(v.Type, Date, "CAST_INVALID_INPUT", err.Error())
		}
		return DateVal(days), nil
	default:
		return Value{}, castErr(v.Type, Date, "CAST_UNSUPPORTED", "no conversion to DATE")
	}
}

func castToTimestamp(v Value) (Value, error) {
	switch v.Type.Kind {
	case KindTimestamp:
		return v, nil
	case KindDate:
		return TimestampVal(v.I * MicrosPerDay), nil
	case KindString, KindChar, KindVarchar:
		micros, err := ParseTimestamp(v.S)
		if err != nil {
			return Value{}, castErr(v.Type, Timestamp, "CAST_INVALID_INPUT", err.Error())
		}
		return TimestampVal(micros), nil
	default:
		return Value{}, castErr(v.Type, Timestamp, "CAST_UNSUPPORTED", "no conversion to TIMESTAMP")
	}
}

func castToArray(v Value, to Type, mode CastMode) (Value, error) {
	if v.Type.Kind != KindArray {
		return Value{}, castErr(v.Type, to, "CAST_UNSUPPORTED", "no conversion to ARRAY")
	}
	out := Value{Type: to, List: make([]Value, len(v.List))}
	for i, e := range v.List {
		c, err := Cast(e, *to.Elem, mode)
		if err != nil {
			return Value{}, err
		}
		out.List[i] = c
	}
	return out, nil
}

func castToMap(v Value, to Type, mode CastMode) (Value, error) {
	if v.Type.Kind != KindMap {
		return Value{}, castErr(v.Type, to, "CAST_UNSUPPORTED", "no conversion to MAP")
	}
	out := Value{Type: to, Keys: make([]Value, len(v.Keys)), Vals: make([]Value, len(v.Vals))}
	for i := range v.Keys {
		k, err := Cast(v.Keys[i], *to.Key, mode)
		if err != nil {
			return Value{}, err
		}
		val, err := Cast(v.Vals[i], *to.Value, mode)
		if err != nil {
			return Value{}, err
		}
		out.Keys[i], out.Vals[i] = k, val
	}
	return out, nil
}

func castToStruct(v Value, to Type, mode CastMode) (Value, error) {
	if v.Type.Kind != KindStruct || len(v.FieldVals) != len(to.Fields) {
		return Value{}, castErr(v.Type, to, "CAST_UNSUPPORTED", "struct shape mismatch")
	}
	out := Value{Type: to, FieldVals: make([]Value, len(to.Fields))}
	for i := range to.Fields {
		c, err := Cast(v.FieldVals[i], to.Fields[i].Type, mode)
		if err != nil {
			return Value{}, err
		}
		out.FieldVals[i] = c
	}
	return out, nil
}
