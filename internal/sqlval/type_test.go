package sqlval

import (
	"testing"
)

func TestParseTypePrimitives(t *testing.T) {
	cases := []struct {
		in   string
		want Type
	}{
		{"INT", Int},
		{"integer", Int},
		{"TINYINT", TinyInt},
		{"byte", TinyInt},
		{"SMALLINT", SmallInt},
		{"short", SmallInt},
		{"BIGINT", BigInt},
		{"long", BigInt},
		{"BOOLEAN", Boolean},
		{"FLOAT", Float},
		{"DOUBLE", Double},
		{"STRING", String},
		{"BINARY", Binary},
		{"DATE", Date},
		{"TIMESTAMP", Timestamp},
		{"DECIMAL(5,2)", DecimalType(5, 2)},
		{"DECIMAL(7)", DecimalType(7, 0)},
		{"DECIMAL", DecimalType(10, 0)},
		{"CHAR(4)", CharType(4)},
		{"VARCHAR(10)", VarcharType(10)},
	}
	for _, c := range cases {
		got, err := ParseType(c.in)
		if err != nil {
			t.Fatalf("ParseType(%q): %v", c.in, err)
		}
		if !got.Equal(c.want) {
			t.Errorf("ParseType(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseTypeNested(t *testing.T) {
	got, err := ParseType("ARRAY<INT>")
	if err != nil || !got.Equal(ArrayType(Int)) {
		t.Fatalf("ARRAY<INT> = %v, %v", got, err)
	}
	got, err = ParseType("MAP<STRING, INT>")
	if err != nil || !got.Equal(MapType(String, Int)) {
		t.Fatalf("MAP = %v, %v", got, err)
	}
	got, err = ParseType("STRUCT<a:INT, b:STRING>")
	if err != nil || !got.Equal(StructType(Field{"a", Int}, Field{"b", String})) {
		t.Fatalf("STRUCT = %v, %v", got, err)
	}
	got, err = ParseType("ARRAY<MAP<STRING,STRUCT<x:DECIMAL(5,2)>>>")
	want := ArrayType(MapType(String, StructType(Field{"x", DecimalType(5, 2)})))
	if err != nil || !got.Equal(want) {
		t.Fatalf("nested = %v, %v", got, err)
	}
}

func TestParseTypeErrors(t *testing.T) {
	for _, in := range []string{"", "FOO", "ARRAY<INT", "MAP<INT>", "CHAR", "DECIMAL(", "INT trailing"} {
		if _, err := ParseType(in); err == nil {
			t.Errorf("ParseType(%q): expected error", in)
		}
	}
}

func TestTypeStringRoundTrip(t *testing.T) {
	types := []Type{
		Int, TinyInt, SmallInt, BigInt, Boolean, Float, Double, String,
		Binary, Date, Timestamp, DecimalType(9, 3), CharType(8), VarcharType(16),
		ArrayType(Int), MapType(String, Double),
		StructType(Field{"a", Int}, Field{"b", ArrayType(String)}),
	}
	for _, typ := range types {
		got, err := ParseType(typ.String())
		if err != nil {
			t.Fatalf("ParseType(%q): %v", typ.String(), err)
		}
		if !got.Equal(typ) {
			t.Errorf("round trip %v -> %v", typ, got)
		}
	}
}

func TestTypePredicates(t *testing.T) {
	if !Int.IsNumeric() || !Int.IsIntegral() || Int.IsCharacter() || Int.IsNested() {
		t.Error("INT predicates wrong")
	}
	if !DecimalType(5, 2).IsNumeric() || DecimalType(5, 2).IsIntegral() {
		t.Error("DECIMAL predicates wrong")
	}
	if !CharType(3).IsCharacter() || CharType(3).IsNumeric() {
		t.Error("CHAR predicates wrong")
	}
	if !ArrayType(Int).IsNested() {
		t.Error("ARRAY predicates wrong")
	}
}

func TestIntegralRange(t *testing.T) {
	min, max := IntegralRange(KindTinyInt)
	if min != -128 || max != 127 {
		t.Errorf("TINYINT range = [%d, %d]", min, max)
	}
	min, max = IntegralRange(KindInt)
	if min != -2147483648 || max != 2147483647 {
		t.Errorf("INT range = [%d, %d]", min, max)
	}
	defer func() {
		if recover() == nil {
			t.Error("IntegralRange(KindString) did not panic")
		}
	}()
	IntegralRange(KindString)
}

func TestTypeEqualStructFieldOrder(t *testing.T) {
	a := StructType(Field{"a", Int}, Field{"b", String})
	b := StructType(Field{"b", String}, Field{"a", Int})
	if a.Equal(b) {
		t.Error("struct types with reordered fields must not be equal")
	}
}
