package sqlval

import (
	"fmt"
	"strconv"
	"strings"
)

// Date values are stored as days since 1970-01-01 in the proleptic
// Gregorian calendar. Timestamp values are microseconds since
// 1970-01-01T00:00:00 with no zone.
//
// The Julian↔Gregorian helpers below model the calendar-rebase
// discrepancy of the §8.2 case study: Hive's classic readers interpret
// stored day counts through the hybrid Julian/Gregorian calendar, while
// Spark 3 uses the proleptic Gregorian calendar, so dates before the
// 1582-10-15 cutover shift when crossing the system boundary.

const (
	jdnUnixEpoch = 2440588 // Julian Day Number of 1970-01-01 (Gregorian)

	// GregorianCutoverDays is 1582-10-15 expressed as days since epoch;
	// dates at or after the cutover are identical in both calendars.
	GregorianCutoverDays = -141427

	// MicrosPerSecond is the timestamp resolution multiplier.
	MicrosPerSecond = int64(1000000)
	// MicrosPerDay is the number of microseconds in a civil day.
	MicrosPerDay = 86400 * MicrosPerSecond
)

// DaysFromCivil converts a proleptic Gregorian civil date to days since
// the Unix epoch.
func DaysFromCivil(year, month, day int) int64 {
	a := int64(14-month) / 12
	y := int64(year) + 4800 - a
	m := int64(month) + 12*a - 3
	jdn := int64(day) + (153*m+2)/5 + 365*y + y/4 - y/100 + y/400 - 32045
	return jdn - jdnUnixEpoch
}

// CivilFromDays converts days since the Unix epoch to a proleptic
// Gregorian civil date.
func CivilFromDays(days int64) (year, month, day int) {
	jdn := days + jdnUnixEpoch
	a := jdn + 32044
	b := (4*a + 3) / 146097
	c := a - 146097*b/4
	d := (4*c + 3) / 1461
	e := c - 1461*d/4
	m := (5*e + 2) / 153
	day = int(e - (153*m+2)/5 + 1)
	month = int(m + 3 - 12*(m/10))
	year = int(100*b + d - 4800 + m/10)
	return year, month, day
}

// julianDaysFromCivil converts a Julian-calendar civil date to days
// since the Unix epoch.
func julianDaysFromCivil(year, month, day int) int64 {
	a := int64(14-month) / 12
	y := int64(year) + 4800 - a
	m := int64(month) + 12*a - 3
	jdn := int64(day) + (153*m+2)/5 + 365*y + y/4 - 32083
	return jdn - jdnUnixEpoch
}

// julianCivilFromDays converts days since the Unix epoch to a
// Julian-calendar civil date.
func julianCivilFromDays(days int64) (year, month, day int) {
	jdn := days + jdnUnixEpoch
	b := int64(0)
	c := jdn + 32082
	d := (4*c + 3) / 1461
	e := c - 1461*d/4
	m := (5*e + 2) / 153
	day = int(e - (153*m+2)/5 + 1)
	month = int(m + 3 - 12*(m/10))
	year = int(100*b + d - 4800 + m/10)
	return year, month, day
}

// RebaseGregorianToHybrid reinterprets a proleptic-Gregorian day count
// as the day count a hybrid-calendar system produces for the same civil
// date. Dates at or after the 1582-10-15 cutover are unchanged.
func RebaseGregorianToHybrid(days int64) int64 {
	if days >= GregorianCutoverDays {
		return days
	}
	y, m, d := CivilFromDays(days)
	return julianDaysFromCivil(y, m, d)
}

// RebaseHybridToGregorian is the inverse reinterpretation: a hybrid
// day count read by a proleptic-Gregorian system.
func RebaseHybridToGregorian(days int64) int64 {
	if days >= GregorianCutoverDays {
		return days
	}
	y, m, d := julianCivilFromDays(days)
	return DaysFromCivil(y, m, d)
}

// IsValidCivil reports whether (year, month, day) is a real calendar
// date in the proleptic Gregorian calendar.
func IsValidCivil(year, month, day int) bool {
	if month < 1 || month > 12 || day < 1 {
		return false
	}
	return day <= daysInMonth(year, month)
}

func daysInMonth(year, month int) int {
	switch month {
	case 1, 3, 5, 7, 8, 10, 12:
		return 31
	case 4, 6, 9, 11:
		return 30
	default: // February
		if isLeap(year) {
			return 29
		}
		return 28
	}
}

func isLeap(year int) bool {
	return year%4 == 0 && (year%100 != 0 || year%400 == 0)
}

// ParseDate parses "YYYY-MM-DD" into days since epoch, rejecting
// impossible dates such as 2021-02-30.
func ParseDate(s string) (int64, error) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) != 3 {
		return 0, fmt.Errorf("sqlval: malformed date %q", s)
	}
	y, err1 := strconv.Atoi(parts[0])
	m, err2 := strconv.Atoi(parts[1])
	d, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil {
		return 0, fmt.Errorf("sqlval: malformed date %q", s)
	}
	if !IsValidCivil(y, m, d) {
		return 0, fmt.Errorf("sqlval: invalid date %q", s)
	}
	return DaysFromCivil(y, m, d), nil
}

// FormatDate renders days since epoch as "YYYY-MM-DD".
func FormatDate(days int64) string {
	y, m, d := CivilFromDays(days)
	return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
}

// ParseTimestamp parses "YYYY-MM-DD HH:MM:SS[.ffffff]" into
// microseconds since epoch, rejecting out-of-range components.
func ParseTimestamp(s string) (int64, error) {
	s = strings.TrimSpace(s)
	datePart, timePart := s, ""
	if i := strings.IndexAny(s, " T"); i >= 0 {
		datePart, timePart = s[:i], s[i+1:]
	}
	days, err := ParseDate(datePart)
	if err != nil {
		return 0, fmt.Errorf("sqlval: invalid timestamp %q", s)
	}
	micros := days * MicrosPerDay
	if timePart == "" {
		return micros, nil
	}
	frac := ""
	if i := strings.IndexByte(timePart, '.'); i >= 0 {
		timePart, frac = timePart[:i], timePart[i+1:]
	}
	hms := strings.Split(timePart, ":")
	if len(hms) != 3 {
		return 0, fmt.Errorf("sqlval: invalid timestamp %q", s)
	}
	h, err1 := strconv.Atoi(hms[0])
	mi, err2 := strconv.Atoi(hms[1])
	sec, err3 := strconv.Atoi(hms[2])
	if err1 != nil || err2 != nil || err3 != nil ||
		h < 0 || h > 23 || mi < 0 || mi > 59 || sec < 0 || sec > 59 {
		return 0, fmt.Errorf("sqlval: invalid timestamp %q", s)
	}
	micros += (int64(h)*3600 + int64(mi)*60 + int64(sec)) * MicrosPerSecond
	if frac != "" {
		if len(frac) > 6 {
			frac = frac[:6]
		}
		for len(frac) < 6 {
			frac += "0"
		}
		f, err := strconv.ParseInt(frac, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("sqlval: invalid timestamp %q", s)
		}
		micros += f
	}
	return micros, nil
}

// FormatTimestamp renders microseconds since epoch as
// "YYYY-MM-DD HH:MM:SS[.ffffff]" (fraction omitted when zero).
func FormatTimestamp(micros int64) string {
	days := micros / MicrosPerDay
	rem := micros % MicrosPerDay
	if rem < 0 {
		days--
		rem += MicrosPerDay
	}
	secs := rem / MicrosPerSecond
	frac := rem % MicrosPerSecond
	h, mi, s := secs/3600, (secs/60)%60, secs%60
	base := fmt.Sprintf("%s %02d:%02d:%02d", FormatDate(days), h, mi, s)
	if frac == 0 {
		return base
	}
	return fmt.Sprintf("%s.%06d", base, frac)
}
