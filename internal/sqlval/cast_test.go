package sqlval

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func mustCast(t *testing.T, v Value, to Type, mode CastMode) Value {
	t.Helper()
	out, err := Cast(v, to, mode)
	if err != nil {
		t.Fatalf("Cast(%v, %v, %v): %v", v, to, mode, err)
	}
	return out
}

func castCode(err error) string {
	var ce *CastError
	if errors.As(err, &ce) {
		return ce.Code
	}
	return ""
}

func TestCastNullPropagates(t *testing.T) {
	for _, to := range []Type{Int, String, DecimalType(5, 2), ArrayType(Int)} {
		out := mustCast(t, NullOf(String), to, CastANSI)
		if !out.Null || !out.Type.Equal(to) {
			t.Errorf("NULL cast to %v = %v", to, out)
		}
	}
}

func TestCastIntegralWidening(t *testing.T) {
	v := mustCast(t, IntVal(TinyInt, 42), BigInt, CastANSI)
	if v.I != 42 || v.Type.Kind != KindBigInt {
		t.Errorf("widening = %v", v)
	}
}

func TestCastIntegralOverflowModes(t *testing.T) {
	big := IntVal(BigInt, 3000000000) // exceeds INT
	_, err := Cast(big, Int, CastANSI)
	if castCode(err) != "CAST_OVERFLOW" {
		t.Errorf("ANSI overflow err = %v", err)
	}
	wrapped := uint32(3000000000)
	v := mustCast(t, big, Int, CastLegacy)
	if v.Null || v.I != int64(int32(wrapped)) {
		t.Errorf("legacy wrap = %v", v)
	}
	v = mustCast(t, big, Int, CastHive)
	if !v.Null {
		t.Errorf("hive overflow should be NULL, got %v", v)
	}
}

func TestCastTinyIntOverflow(t *testing.T) {
	v200 := IntVal(Int, 200)
	if _, err := Cast(v200, TinyInt, CastANSI); castCode(err) != "CAST_OVERFLOW" {
		t.Error("ANSI should reject 200 -> TINYINT")
	}
	wrapped := uint8(200)
	leg := mustCast(t, v200, TinyInt, CastLegacy)
	if leg.I != int64(int8(wrapped)) {
		t.Errorf("legacy 200 -> TINYINT = %d", leg.I)
	}
	hv := mustCast(t, v200, TinyInt, CastHive)
	if !hv.Null {
		t.Error("hive 200 -> TINYINT should be NULL")
	}
}

func TestCastStringToNumber(t *testing.T) {
	v := mustCast(t, StringVal("123"), Int, CastANSI)
	if v.I != 123 {
		t.Errorf("got %v", v)
	}
	v = mustCast(t, StringVal("3.0"), Int, CastANSI)
	if v.I != 3 {
		t.Errorf("string decimal to int = %v", v)
	}
	_, err := Cast(StringVal("abc"), Int, CastANSI)
	if castCode(err) != "CAST_INVALID_INPUT" {
		t.Errorf("err = %v", err)
	}
	if v := mustCast(t, StringVal("abc"), Int, CastHive); !v.Null {
		t.Error("hive invalid string should be NULL")
	}
}

func TestCastNaNInfinityStrings(t *testing.T) {
	// SPARK-40525 model: ANSI rejects the IEEE spellings, legacy accepts.
	for _, s := range []string{"NaN", "Infinity", "-Infinity"} {
		if _, err := Cast(StringVal(s), Float, CastANSI); castCode(err) != "CAST_INVALID_INPUT" {
			t.Errorf("ANSI %q: err = %v", s, err)
		}
		v := mustCast(t, StringVal(s), Float, CastLegacy)
		if v.Null {
			t.Errorf("legacy %q should produce a value", s)
		}
	}
	v := mustCast(t, StringVal("NaN"), Double, CastLegacy)
	if !v.IsNaN() {
		t.Errorf("legacy NaN = %v", v)
	}
}

func TestCastDecimalPrecision(t *testing.T) {
	d, _ := ParseDecimal("1.23456")
	// SPARK-40439 model: excess precision errors under ANSI, NULL in Hive.
	_, err := Cast(DecimalVal(d, 10), DecimalType(5, 2), CastANSI)
	if castCode(err) != "CAST_OVERFLOW" {
		t.Errorf("ANSI decimal err = %v", err)
	}
	v := mustCast(t, DecimalVal(d, 10), DecimalType(5, 2), CastHive)
	if !v.Null {
		t.Error("hive decimal excess precision should be NULL")
	}
	ok, _ := ParseDecimal("1.23")
	v = mustCast(t, DecimalVal(ok, 10), DecimalType(5, 2), CastANSI)
	if v.D.String() != "1.23" {
		t.Errorf("exact decimal = %v", v)
	}
	// Overflowing the integral digits.
	huge, _ := ParseDecimal("123456.78")
	if _, err := Cast(DecimalVal(huge, 10), DecimalType(5, 2), CastANSI); castCode(err) != "CAST_OVERFLOW" {
		t.Errorf("integral overflow err = %v", err)
	}
}

func TestCastCharPaddingAndLength(t *testing.T) {
	v := mustCast(t, StringVal("ab"), CharType(4), CastANSI)
	if v.S != "ab  " {
		t.Errorf("CHAR pad = %q", v.S)
	}
	_, err := Cast(StringVal("abcde"), CharType(4), CastANSI)
	if castCode(err) != "EXCEED_CHAR_LENGTH" {
		t.Errorf("err = %v", err)
	}
	v = mustCast(t, StringVal("abcde"), CharType(4), CastLegacy)
	if v.S != "abcd" {
		t.Errorf("legacy CHAR truncate = %q", v.S)
	}
	// Trailing spaces beyond the length are not an error.
	v = mustCast(t, StringVal("abcd   "), CharType(4), CastANSI)
	if v.S != "abcd" {
		t.Errorf("trailing-space CHAR = %q", v.S)
	}
}

func TestCastVarcharLength(t *testing.T) {
	v := mustCast(t, StringVal("ab"), VarcharType(4), CastANSI)
	if v.S != "ab" {
		t.Errorf("VARCHAR keeps content = %q", v.S)
	}
	_, err := Cast(StringVal("abcdef"), VarcharType(4), CastANSI)
	if castCode(err) != "EXCEED_VARCHAR_LENGTH" {
		t.Errorf("err = %v", err)
	}
	v = mustCast(t, StringVal("abcdef"), VarcharType(4), CastHive)
	if v.S != "abcd" {
		t.Errorf("hive VARCHAR truncate = %q", v.S)
	}
}

func TestCastBooleanStrings(t *testing.T) {
	v := mustCast(t, StringVal("true"), Boolean, CastANSI)
	if !v.B {
		t.Error("true not parsed")
	}
	// SPARK-40630 model: 'yes' is invalid; lenient modes yield NULL
	// silently.
	if _, err := Cast(StringVal("yes"), Boolean, CastANSI); castCode(err) != "CAST_INVALID_INPUT" {
		t.Errorf("ANSI 'yes' err = %v", err)
	}
	v = mustCast(t, StringVal("yes"), Boolean, CastLegacy)
	if !v.Null {
		t.Error("legacy 'yes' should be NULL")
	}
}

func TestCastDates(t *testing.T) {
	v := mustCast(t, StringVal("2021-06-15"), Date, CastANSI)
	if FormatDate(v.I) != "2021-06-15" {
		t.Errorf("date = %v", v)
	}
	// SPARK-40629 model: invalid date errors under ANSI, NULL otherwise.
	if _, err := Cast(StringVal("2021-02-30"), Date, CastANSI); castCode(err) != "CAST_INVALID_INPUT" {
		t.Errorf("invalid date err = %v", err)
	}
	v = mustCast(t, StringVal("2021-02-30"), Date, CastLegacy)
	if !v.Null {
		t.Error("legacy invalid date should be NULL")
	}
	// Date <-> timestamp.
	ts := mustCast(t, v, Timestamp, CastANSI)
	if !ts.Null {
		t.Error("NULL date to timestamp should stay NULL")
	}
	d := mustCast(t, StringVal("2021-06-15"), Date, CastANSI)
	ts = mustCast(t, d, Timestamp, CastANSI)
	back := mustCast(t, ts, Date, CastANSI)
	if back.I != d.I {
		t.Errorf("date->ts->date = %d, want %d", back.I, d.I)
	}
}

func TestCastNested(t *testing.T) {
	arr := ArrayVal(Int, IntVal(Int, 1), IntVal(Int, 2))
	out := mustCast(t, arr, ArrayType(BigInt), CastANSI)
	if out.List[0].Type.Kind != KindBigInt || out.List[1].I != 2 {
		t.Errorf("array cast = %v", out)
	}
	m := MapVal(String, Int, []Value{StringVal("a")}, []Value{IntVal(Int, 1)})
	outM := mustCast(t, m, MapType(String, Double), CastANSI)
	if outM.Vals[0].F != 1.0 {
		t.Errorf("map cast = %v", outM)
	}
	st := StructVal(StructType(Field{"x", Int}), IntVal(Int, 7))
	outS := mustCast(t, st, StructType(Field{"x", BigInt}), CastANSI)
	if outS.FieldVals[0].I != 7 {
		t.Errorf("struct cast = %v", outS)
	}
	// Element failure propagates under ANSI.
	bad := ArrayVal(BigInt, IntVal(BigInt, 3000000000))
	if _, err := Cast(bad, ArrayType(Int), CastANSI); err == nil {
		t.Error("nested overflow should error under ANSI")
	}
}

func TestCastToString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{IntVal(Int, 42), "42"},
		{BoolVal(true), "true"},
		{StringVal("hi"), "hi"},
		{DateVal(0), "1970-01-01"},
	}
	for _, c := range cases {
		got := mustCast(t, c.v, String, CastANSI)
		if got.S != c.want {
			t.Errorf("%v to string = %q, want %q", c.v, got.S, c.want)
		}
	}
}

func TestCastErrorMessageMentionsCode(t *testing.T) {
	_, err := Cast(StringVal("abc"), Int, CastANSI)
	if err == nil || !strings.Contains(err.Error(), "CAST_INVALID_INPUT") {
		t.Errorf("err = %v", err)
	}
}

func TestCastIntegralRoundTripProperty(t *testing.T) {
	// Any in-range int round-trips through STRING under every mode.
	f := func(n int32, modeSel uint8) bool {
		mode := CastMode(modeSel % 3)
		v := IntVal(Int, int64(n))
		s, err := Cast(v, String, mode)
		if err != nil {
			return false
		}
		back, err := Cast(s, Int, mode)
		return err == nil && !back.Null && back.I == int64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCastHiveNeverErrors(t *testing.T) {
	// Hive-mode casts never surface errors; failures become NULL.
	f := func(s string) bool {
		for _, to := range []Type{Int, Double, Date, Boolean, DecimalType(5, 2)} {
			if _, err := Cast(StringVal(s), to, CastHive); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueEqualData(t *testing.T) {
	if !IntVal(Int, 5).EqualData(IntVal(BigInt, 5)) {
		t.Error("integral cross-kind data equality")
	}
	if !StringVal("x").EqualData(VarcharVal("x", 10)) {
		t.Error("character cross-kind data equality")
	}
	if IntVal(Int, 5).EqualData(StringVal("5")) {
		t.Error("int should not equal string")
	}
	if !DoubleVal(0).EqualData(DoubleVal(0)) {
		t.Error("double equality")
	}
	nan := Value{Type: Double, F: nanValue()}
	if !nan.EqualData(nan) {
		t.Error("NaN should equal NaN for oracle purposes")
	}
	if !NullOf(Int).EqualData(NullOf(Int)) {
		t.Error("NULL equals NULL")
	}
	if NullOf(Int).EqualData(IntVal(Int, 0)) {
		t.Error("NULL != 0")
	}
}

func nanValue() float64 {
	v := 0.0
	return v / v
}

func TestValueCloneIsDeep(t *testing.T) {
	arr := ArrayVal(Int, IntVal(Int, 1))
	cp := arr.Clone()
	cp.List[0].I = 99
	if arr.List[0].I != 1 {
		t.Error("clone shares list storage")
	}
	b := BinaryVal([]byte{1, 2})
	cb := b.Clone()
	cb.Bytes[0] = 9
	if b.Bytes[0] != 1 {
		t.Error("clone shares byte storage")
	}
}
