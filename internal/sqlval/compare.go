package sqlval

import (
	"bytes"
	"fmt"
	"strings"
)

// Compare orders two values of comparable kinds, returning -1, 0 or +1.
// Numeric values compare numerically across kinds; character values
// compare lexicographically. NULL compares less than everything and
// equal to NULL. Nested types and cross-family comparisons are errors.
func Compare(a, b Value) (int, error) {
	if a.Null || b.Null {
		switch {
		case a.Null && b.Null:
			return 0, nil
		case a.Null:
			return -1, nil
		default:
			return 1, nil
		}
	}
	switch {
	case a.Type.IsNumeric() && b.Type.IsNumeric():
		return compareNumeric(a, b), nil
	case a.Type.IsCharacter() && b.Type.IsCharacter():
		return strings.Compare(a.S, b.S), nil
	case a.Type.Kind == KindBoolean && b.Type.Kind == KindBoolean:
		switch {
		case a.B == b.B:
			return 0, nil
		case b.B:
			return -1, nil
		default:
			return 1, nil
		}
	case a.Type.Kind == KindBinary && b.Type.Kind == KindBinary:
		return bytes.Compare(a.Bytes, b.Bytes), nil
	case a.Type.Kind == b.Type.Kind && (a.Type.Kind == KindDate || a.Type.Kind == KindTimestamp):
		return compareInt64(a.I, b.I), nil
	default:
		return 0, fmt.Errorf("sqlval: cannot compare %s with %s", a.Type, b.Type)
	}
}

func compareNumeric(a, b Value) int {
	if a.Type.IsIntegral() && b.Type.IsIntegral() {
		return compareInt64(a.I, b.I)
	}
	if a.Type.Kind == KindDecimal && b.Type.Kind == KindDecimal {
		return a.D.Cmp(b.D)
	}
	fa, fb := numericFloat(a), numericFloat(b)
	switch {
	case fa < fb:
		return -1
	case fa > fb:
		return 1
	default:
		return 0
	}
}

func numericFloat(v Value) float64 {
	switch v.Type.Kind {
	case KindFloat, KindDouble:
		return v.F
	case KindDecimal:
		return v.D.Float64()
	default:
		return float64(v.I)
	}
}

func compareInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
