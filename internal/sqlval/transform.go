package sqlval

// TransformLeaves returns a copy of v with f applied to every non-null
// leaf (non-nested) value, recursing through arrays, maps and structs.
// Engines use it to apply read/write-side reinterpretations such as
// calendar rebasing and time-zone adjustment uniformly to nested data.
func TransformLeaves(v Value, f func(Value) Value) Value {
	if v.Null {
		return v
	}
	switch v.Type.Kind {
	case KindArray:
		out := v.Clone()
		for i := range out.List {
			out.List[i] = TransformLeaves(out.List[i], f)
		}
		return out
	case KindMap:
		out := v.Clone()
		for i := range out.Keys {
			out.Keys[i] = TransformLeaves(out.Keys[i], f)
			out.Vals[i] = TransformLeaves(out.Vals[i], f)
		}
		return out
	case KindStruct:
		out := v.Clone()
		for i := range out.FieldVals {
			out.FieldVals[i] = TransformLeaves(out.FieldVals[i], f)
		}
		return out
	default:
		return f(v)
	}
}

// RebaseDates returns a leaf transformer that applies f to DATE day
// counts and leaves other values untouched.
func RebaseDates(f func(int64) int64) func(Value) Value {
	return func(v Value) Value {
		if v.Type.Kind == KindDate {
			v.I = f(v.I)
		}
		return v
	}
}

// ShiftTimestamps returns a leaf transformer that adds deltaMicros to
// TIMESTAMP values.
func ShiftTimestamps(deltaMicros int64) func(Value) Value {
	return func(v Value) Value {
		if v.Type.Kind == KindTimestamp {
			v.I += deltaMicros
		}
		return v
	}
}
