package sqlval

import "testing"

func cmp(t *testing.T, a, b Value) int {
	t.Helper()
	c, err := Compare(a, b)
	if err != nil {
		t.Fatalf("Compare(%v, %v): %v", a, b, err)
	}
	return c
}

func TestCompareNumericFamilies(t *testing.T) {
	if cmp(t, IntVal(TinyInt, 5), IntVal(BigInt, 7)) != -1 {
		t.Error("cross-kind integral compare")
	}
	if cmp(t, IntVal(Int, 5), DoubleVal(4.5)) != 1 {
		t.Error("int vs double")
	}
	d1, _ := ParseDecimal("1.50")
	d2, _ := ParseDecimal("1.5")
	if cmp(t, DecimalVal(d1, 5), DecimalVal(d2, 5)) != 0 {
		t.Error("decimal scale-insensitive equality")
	}
	if cmp(t, DecimalVal(d1, 5), DoubleVal(2.0)) != -1 {
		t.Error("decimal vs double")
	}
	if cmp(t, FloatVal(1.5), FloatVal(1.5)) != 0 {
		t.Error("float equality")
	}
}

func TestCompareCharacterAndBoolean(t *testing.T) {
	if cmp(t, StringVal("a"), VarcharVal("b", 4)) != -1 {
		t.Error("character compare")
	}
	if cmp(t, BoolVal(false), BoolVal(true)) != -1 {
		t.Error("bool ordering")
	}
	if cmp(t, BoolVal(true), BoolVal(true)) != 0 {
		t.Error("bool equality")
	}
	if cmp(t, BoolVal(true), BoolVal(false)) != 1 {
		t.Error("bool ordering reversed")
	}
}

func TestCompareBinaryAndTemporal(t *testing.T) {
	if cmp(t, BinaryVal([]byte{1}), BinaryVal([]byte{2})) != -1 {
		t.Error("binary compare")
	}
	if cmp(t, DateVal(10), DateVal(20)) != -1 {
		t.Error("date compare")
	}
	if cmp(t, TimestampVal(100), TimestampVal(100)) != 0 {
		t.Error("timestamp equality")
	}
}

func TestCompareNulls(t *testing.T) {
	if cmp(t, NullOf(Int), NullOf(Int)) != 0 {
		t.Error("null == null")
	}
	if cmp(t, NullOf(Int), IntVal(Int, 0)) != -1 {
		t.Error("null sorts first")
	}
	if cmp(t, IntVal(Int, 0), NullOf(Int)) != 1 {
		t.Error("null sorts first reversed")
	}
}

func TestCompareIncomparable(t *testing.T) {
	if _, err := Compare(IntVal(Int, 1), StringVal("x")); err == nil {
		t.Error("int vs string should error")
	}
	if _, err := Compare(ArrayVal(Int), ArrayVal(Int)); err == nil {
		t.Error("arrays should not compare")
	}
	if _, err := Compare(DateVal(0), TimestampVal(0)); err == nil {
		t.Error("date vs timestamp should error")
	}
}

func TestTransformLeavesNested(t *testing.T) {
	inner := StructVal(StructType(Field{"d", Date}), DateVal(100))
	arr := ArrayVal(inner.Type, inner)
	m := MapVal(String, arr.Type, []Value{StringVal("k")}, []Value{arr})
	out := TransformLeaves(m, RebaseDates(func(d int64) int64 { return d + 1 }))
	got := out.Vals[0].List[0].FieldVals[0].I
	if got != 101 {
		t.Errorf("nested rebase = %d", got)
	}
	// Original untouched.
	if m.Vals[0].List[0].FieldVals[0].I != 100 {
		t.Error("TransformLeaves mutated the input")
	}
	// Nulls pass through.
	n := TransformLeaves(NullOf(Date), RebaseDates(func(int64) int64 { return 0 }))
	if !n.Null {
		t.Error("null should pass through")
	}
}

func TestShiftTimestamps(t *testing.T) {
	v := TransformLeaves(TimestampVal(1000), ShiftTimestamps(500))
	if v.I != 1500 {
		t.Errorf("shift = %d", v.I)
	}
	// Non-timestamp leaves untouched.
	v = TransformLeaves(IntVal(Int, 7), ShiftTimestamps(500))
	if v.I != 7 {
		t.Errorf("int = %d", v.I)
	}
}

func TestValueStringRenderings(t *testing.T) {
	d, _ := ParseDecimal("1.50")
	cases := map[string]Value{
		"NULL":                NullOf(Int),
		"true":                BoolVal(true),
		"-7":                  IntVal(Int, -7),
		"NaN":                 {Type: Double, F: nanValue()},
		"Infinity":            DoubleVal(inf(1)),
		"-Infinity":           DoubleVal(inf(-1)),
		"1.50":                DecimalVal(d, 5),
		`"hi"`:                StringVal("hi"),
		"X'0102'":             BinaryVal([]byte{1, 2}),
		"1970-01-01":          DateVal(0),
		"1970-01-01 00:00:00": TimestampVal(0),
		"[1,2]":               ArrayVal(Int, IntVal(Int, 1), IntVal(Int, 2)),
		`{"k":1}`:             MapVal(String, Int, []Value{StringVal("k")}, []Value{IntVal(Int, 1)}),
		"{x:1}":               StructVal(StructType(Field{"x", Int}), IntVal(Int, 1)),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String(%#v kind %v) = %q, want %q", v, v.Type.Kind, got, want)
		}
	}
}

func inf(sign int) float64 {
	v := 1.0
	if sign < 0 {
		v = -1.0
	}
	return v / 0.0001e-300 * 1e300 // overflow to ±Inf
}

func TestValueEqualStrictType(t *testing.T) {
	if IntVal(Int, 5).Equal(IntVal(BigInt, 5)) {
		t.Error("Equal requires equal types")
	}
	if !IntVal(Int, 5).Equal(IntVal(Int, 5)) {
		t.Error("Equal on identical values")
	}
	a := ArrayVal(Int, IntVal(Int, 1))
	b := ArrayVal(Int, IntVal(Int, 2))
	if a.Equal(b) {
		t.Error("array data inequality")
	}
	if !a.Equal(a.Clone()) {
		t.Error("clone should be equal")
	}
}

func TestRowHelpers(t *testing.T) {
	r := Row{IntVal(Int, 1), StringVal("x")}
	if r.String() != `(1, "x")` {
		t.Errorf("row string = %q", r.String())
	}
	if !r.Equal(r.Clone()) {
		t.Error("row clone equality")
	}
	if r.Equal(Row{IntVal(Int, 1)}) {
		t.Error("length mismatch")
	}
	cp := r.Clone()
	cp[0].I = 99
	if r[0].I != 1 {
		t.Error("row clone shares storage")
	}
}

func TestCastModeString(t *testing.T) {
	if CastANSI.String() != "ansi" || CastLegacy.String() != "legacy" || CastHive.String() != "hive" {
		t.Error("mode names")
	}
}

func TestCastToBinaryAndTimestamp(t *testing.T) {
	v, err := Cast(StringVal("abc"), Binary, CastANSI)
	if err != nil || string(v.Bytes) != "abc" {
		t.Errorf("string->binary = %v, %v", v, err)
	}
	if _, err := Cast(IntVal(Int, 1), Binary, CastANSI); err == nil {
		t.Error("int->binary should error under ANSI")
	}
	ts, err := Cast(StringVal("2021-06-15 10:30:00"), Timestamp, CastANSI)
	if err != nil || FormatTimestamp(ts.I) != "2021-06-15 10:30:00" {
		t.Errorf("string->timestamp = %v, %v", ts, err)
	}
	d, err := Cast(ts, Date, CastANSI)
	if err != nil || FormatDate(d.I) != "2021-06-15" {
		t.Errorf("timestamp->date = %v, %v", d, err)
	}
	back, err := Cast(d, Timestamp, CastANSI)
	if err != nil || FormatTimestamp(back.I) != "2021-06-15 00:00:00" {
		t.Errorf("date->timestamp = %v, %v", back, err)
	}
	sec, err := Cast(ts, BigInt, CastANSI)
	if err != nil || sec.I != ts.I/MicrosPerSecond {
		t.Errorf("timestamp->bigint = %v, %v", sec, err)
	}
}

func TestCastBooleanNumericForms(t *testing.T) {
	v, _ := Cast(IntVal(Int, 2), Boolean, CastANSI)
	if !v.B {
		t.Error("nonzero int is true")
	}
	v, _ = Cast(BoolVal(true), Int, CastANSI)
	if v.I != 1 {
		t.Error("true -> 1")
	}
	v, _ = Cast(BoolVal(false), Double, CastANSI)
	if v.F != 0 {
		t.Error("false -> 0.0")
	}
	v, _ = Cast(StringVal(" F "), Boolean, CastANSI)
	if v.B {
		t.Error("'F' -> false")
	}
}
