// Package hdfssim simulates an HDFS-like distributed file system
// namespace with the cross-system-visible behaviours the failure study
// depends on:
//
//   - compressed files report length −1 through Stat, the overloaded
//     custom metadata behind SPARK-27239 (Figure 2);
//   - a NameNode safe mode in which mutations are rejected, the state
//     HBase wrongly assumed away in HBASE-537;
//   - delegation tokens with expiry on a virtual clock, the mechanism
//     behind the YARN-2790 token-renewal fix;
//   - per-file locality (local vs. remote block placement), the custom
//     property upstream systems must special-case (FLINK-13758).
//
// The simulator is safe for concurrent use.
package hdfssim

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/csi"
	"repro/internal/obs"
	"repro/internal/vclock"
)

// Common error classes surfaced across the system boundary.
var (
	ErrNotFound     = fmt.Errorf("hdfs: file not found")
	ErrExists       = fmt.Errorf("hdfs: file already exists")
	ErrSafeMode     = fmt.Errorf("hdfs: NameNode is in safe mode; mutations are rejected")
	ErrTokenExpired = fmt.Errorf("hdfs: delegation token expired")
	ErrBadToken     = fmt.Errorf("hdfs: invalid delegation token")
)

// CompressedLength is the sentinel length reported for compressed
// files: the undefined value whose interpretation differs across
// systems (Figure 2 of the paper).
const CompressedLength = int64(-1)

// FileInfo is the metadata visible to upstream systems.
type FileInfo struct {
	Path       string
	Length     int64 // CompressedLength (−1) for compressed files
	RawLength  int64 // actual byte length, not part of the POSIX surface
	Compressed bool  // custom (non-POSIX) property
	Local      bool  // custom property: blocks resident on the caller's node
	ModTimeMs  int64
}

// Token is a delegation token with a virtual-clock expiry.
type Token struct {
	ID       int64
	Renewer  string
	ExpiryMs int64
}

type file struct {
	data       []byte
	compressed bool
	local      bool
	modTimeMs  int64
}

// FileSystem is the simulated HDFS namespace.
type FileSystem struct {
	mu       sync.Mutex
	clock    *vclock.Sim
	tracer   *obs.Tracer
	traceTop *obs.Span
	files    map[string]*file
	safeMode bool

	nextToken  int64
	tokens     map[int64]*Token
	tokenTTLMs int64
	statCalls  int64
	writeCalls int64
	readCalls  int64

	leases     map[string]*leaseState
	leaseTTLMs int64
	replicas   map[string][]string
}

// DefaultTokenTTLMs is the default delegation-token lifetime.
const DefaultTokenTTLMs = 24 * 3600 * 1000

// New creates an empty file system on the given virtual clock. A nil
// clock gets a private one (time stays at zero unless advanced).
func New(clock *vclock.Sim) *FileSystem {
	if clock == nil {
		clock = vclock.New()
	}
	return &FileSystem{
		clock:      clock,
		files:      make(map[string]*file),
		tokens:     make(map[int64]*Token),
		tokenTTLMs: DefaultTokenTTLMs,
	}
}

// Clock exposes the file system's virtual clock.
func (fs *FileSystem) Clock() *vclock.Sim { return fs.clock }

// SetTrace attaches a tracer and a default parent span; the file
// system then emits a span for every operation that crosses its
// boundary (write, read, stat, token checks). A nil tracer disables
// emission.
func (fs *FileSystem) SetTrace(tr *obs.Tracer, parent *obs.Span) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.tracer = tr
	fs.traceTop = parent
}

// span emits a completed boundary span; call with fs.mu held.
func (fs *FileSystem) span(plane csi.Plane, name, path string, err error) *obs.Span {
	if fs.tracer == nil {
		return nil
	}
	sp := fs.tracer.Span(fs.traceTop, csi.HDFS, plane, name)
	if path != "" {
		sp.Set("path", path)
	}
	sp.Fail(err)
	sp.End()
	return sp
}

// SetSafeMode toggles NameNode safe mode.
func (fs *FileSystem) SetSafeMode(on bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.safeMode = on
}

// InSafeMode reports whether the NameNode is in safe mode.
func (fs *FileSystem) InSafeMode() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.safeMode
}

func clean(path string) string {
	if !strings.HasPrefix(path, "/") {
		path = "/" + path
	}
	return strings.TrimSuffix(path, "/")
}

// WriteOptions control block placement and on-write compression.
type WriteOptions struct {
	Compress  bool
	Local     bool
	Overwrite bool
}

// Write stores data at path.
func (fs *FileSystem) Write(path string, data []byte, opts WriteOptions) error {
	path = clean(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.writeCalls++
	err := fs.writeLocked(path, data, opts)
	sp := fs.span(csi.DataPlane, "write", path, err)
	if opts.Compress {
		sp.Set("compressed", "true")
	}
	return err
}

func (fs *FileSystem) writeLocked(path string, data []byte, opts WriteOptions) error {
	if fs.safeMode {
		return ErrSafeMode
	}
	if _, ok := fs.files[path]; ok && !opts.Overwrite {
		return fmt.Errorf("%w: %s", ErrExists, path)
	}
	fs.files[path] = &file{
		data:       append([]byte(nil), data...),
		compressed: opts.Compress,
		local:      opts.Local,
		modTimeMs:  fs.clock.Now(),
	}
	return nil
}

// Read returns the file content.
func (fs *FileSystem) Read(path string) ([]byte, error) {
	path = clean(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.readCalls++
	f, ok := fs.files[path]
	if !ok {
		err := fmt.Errorf("%w: %s", ErrNotFound, path)
		fs.span(csi.DataPlane, "read", path, err)
		return nil, err
	}
	fs.span(csi.DataPlane, "read", path, nil)
	return append([]byte(nil), f.data...), nil
}

// Stat returns file metadata. For compressed files the reported Length
// is −1 — the discrepancy of SPARK-27239.
func (fs *FileSystem) Stat(path string) (FileInfo, error) {
	path = clean(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.statCalls++
	f, ok := fs.files[path]
	if !ok {
		err := fmt.Errorf("%w: %s", ErrNotFound, path)
		fs.span(csi.DataPlane, "stat", path, err)
		return FileInfo{}, err
	}
	info := FileInfo{
		Path:       path,
		Length:     int64(len(f.data)),
		RawLength:  int64(len(f.data)),
		Compressed: f.compressed,
		Local:      f.local,
		ModTimeMs:  f.modTimeMs,
	}
	if f.compressed {
		info.Length = CompressedLength
	}
	if fs.tracer != nil {
		fs.span(csi.DataPlane, "stat", path, nil).Set("length", strconv.FormatInt(info.Length, 10))
	}
	return info, nil
}

// Delete removes a file.
func (fs *FileSystem) Delete(path string) error {
	path = clean(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.safeMode {
		return ErrSafeMode
	}
	if _, ok := fs.files[path]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	delete(fs.files, path)
	return nil
}

// List returns the paths under the given prefix, sorted.
func (fs *FileSystem) List(prefix string) []string {
	prefix = clean(prefix)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var out []string
	for p := range fs.files {
		if strings.HasPrefix(p, prefix+"/") || p == prefix {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Exists reports whether the path exists.
func (fs *FileSystem) Exists(path string) bool {
	path = clean(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[path]
	return ok
}

// IssueToken issues a delegation token valid for the configured TTL.
func (fs *FileSystem) IssueToken(renewer string) *Token {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.nextToken++
	t := &Token{ID: fs.nextToken, Renewer: renewer, ExpiryMs: fs.clock.Now() + fs.tokenTTLMs}
	fs.tokens[t.ID] = t
	return t
}

// SetTokenTTL overrides the token lifetime for subsequently issued
// tokens (the "small timeout value" hazard of YARN-2790).
func (fs *FileSystem) SetTokenTTL(ms int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.tokenTTLMs = ms
}

// RenewToken extends a token's expiry by the configured TTL.
func (fs *FileSystem) RenewToken(id int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	t, ok := fs.tokens[id]
	if !ok {
		return ErrBadToken
	}
	t.ExpiryMs = fs.clock.Now() + fs.tokenTTLMs
	return nil
}

// CheckToken validates a token against the virtual clock.
func (fs *FileSystem) CheckToken(id int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	t, ok := fs.tokens[id]
	if !ok {
		return ErrBadToken
	}
	if fs.clock.Now() > t.ExpiryMs {
		return ErrTokenExpired
	}
	return nil
}

// ReadWithToken is Read gated by a delegation token, the access path
// exercised by the YARN-2790 replay.
func (fs *FileSystem) ReadWithToken(path string, tokenID int64) ([]byte, error) {
	if err := fs.CheckToken(tokenID); err != nil {
		return nil, err
	}
	return fs.Read(path)
}

// Stats reports operation counters for benches.
func (fs *FileSystem) Stats() (stats, writes, reads int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.statCalls, fs.writeCalls, fs.readCalls
}
