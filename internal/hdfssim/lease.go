package hdfssim

// NameNode-side lease and replica-set bookkeeping: the shared state the
// partition fault plane observes. Two of CoFI's HDFS findings live
// exactly here:
//
//   - HDFS-15235: a client's lease expires during a GC pause; if the
//     NameNode's reassignment is not visible to every DataNode, writes
//     from the old and new holder race on stale pipeline state;
//   - HDFS-15367: the NameNode's replica locations go stale when a
//     DataNode's block report is partitioned away, leaving metadata
//     that points at replicas no DataNode holds.
//
// Leases expire lazily against the virtual clock — there is no
// background sweeper, so expiry is a pure function of (state, Now) and
// replays deterministically.

import (
	"fmt"
	"sort"
)

// Lease error classes.
var (
	// ErrLeaseHeld reports an acquisition attempt while another holder's
	// lease is still unexpired.
	ErrLeaseHeld = fmt.Errorf("hdfs: file is already leased to another client")
	// ErrLeaseLost reports a renewal or release by a client that no
	// longer holds the lease (it expired, or was reassigned).
	ErrLeaseLost = fmt.Errorf("hdfs: client no longer holds the lease")
)

// DefaultLeaseTTLMs is the default lease soft limit.
const DefaultLeaseTTLMs = 60_000

// Lease is the NameNode's record of a file's write lease. Gen is the
// pipeline generation stamp: it increments every time the lease changes
// holder, so a DataNode can tell a stale writer from the current one.
type Lease struct {
	Holder   string
	Gen      int64
	ExpiryMs int64
}

type leaseState struct {
	holder   string
	gen      int64
	expiryMs int64
}

// SetLeaseTTL overrides the lease soft limit for subsequent
// acquisitions and renewals.
func (fs *FileSystem) SetLeaseTTL(ms int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.leaseTTLMs = ms
}

func (fs *FileSystem) leaseTTLLocked() int64 {
	if fs.leaseTTLMs <= 0 {
		return DefaultLeaseTTLMs
	}
	return fs.leaseTTLMs
}

// liveLeaseLocked returns the unexpired lease on path, nil if none. A
// lease is valid for [grant, expiry): at the expiry instant it is gone,
// so a monitor waking exactly then observes the expired state.
func (fs *FileSystem) liveLeaseLocked(path string) *leaseState {
	l, ok := fs.leases[path]
	if !ok || fs.clock.Now() >= l.expiryMs {
		return nil
	}
	return l
}

// AcquireLease grants (or renews) the write lease on path to holder and
// returns the pipeline generation. A different holder's unexpired lease
// rejects the acquisition; acquiring over an *expired* lease reassigns
// it and bumps the generation — the HDFS-15235 hand-off.
func (fs *FileSystem) AcquireLease(path, holder string) (int64, error) {
	path = clean(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.leases == nil {
		fs.leases = make(map[string]*leaseState)
	}
	expiry := fs.clock.Now() + fs.leaseTTLLocked()
	if live := fs.liveLeaseLocked(path); live != nil {
		if live.holder != holder {
			return 0, fmt.Errorf("%w: %s held by %s", ErrLeaseHeld, path, live.holder)
		}
		live.expiryMs = expiry
		return live.gen, nil
	}
	gen := int64(1)
	if old, ok := fs.leases[path]; ok {
		gen = old.gen + 1
	}
	fs.leases[path] = &leaseState{holder: holder, gen: gen, expiryMs: expiry}
	return gen, nil
}

// RenewLease extends holder's lease on path.
func (fs *FileSystem) RenewLease(path, holder string) error {
	path = clean(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	live := fs.liveLeaseLocked(path)
	if live == nil || live.holder != holder {
		return fmt.Errorf("%w: %s", ErrLeaseLost, path)
	}
	live.expiryMs = fs.clock.Now() + fs.leaseTTLLocked()
	return nil
}

// ReleaseLease drops holder's lease on path.
func (fs *FileSystem) ReleaseLease(path, holder string) error {
	path = clean(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	live := fs.liveLeaseLocked(path)
	if live == nil || live.holder != holder {
		return fmt.Errorf("%w: %s", ErrLeaseLost, path)
	}
	delete(fs.leases, path)
	return nil
}

// LeaseHolder returns the NameNode's current view of path's lease: the
// unexpired holder and generation, or ("", last generation) once
// expired — the state a recovering NameNode reassigns from.
func (fs *FileSystem) LeaseHolder(path string) (string, int64) {
	path = clean(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if live := fs.liveLeaseLocked(path); live != nil {
		return live.holder, live.gen
	}
	if old, ok := fs.leases[path]; ok {
		return "", old.gen
	}
	return "", 0
}

// --- replica locations ---------------------------------------------------

// SetReplicas records the NameNode's replica locations for path's
// block. Locations are stored sorted so snapshots render canonically.
func (fs *FileSystem) SetReplicas(path string, nodes ...string) {
	path = clean(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.replicas == nil {
		fs.replicas = make(map[string][]string)
	}
	fs.replicas[path] = sortedCopy(nodes)
}

// AddReplica adds a replica location for path.
func (fs *FileSystem) AddReplica(path, node string) {
	path = clean(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.replicas == nil {
		fs.replicas = make(map[string][]string)
	}
	for _, n := range fs.replicas[path] {
		if n == node {
			return
		}
	}
	fs.replicas[path] = sortedCopy(append(fs.replicas[path], node))
}

// RemoveReplica drops a replica location for path (a block report that
// no longer lists the block, or a decommissioned node).
func (fs *FileSystem) RemoveReplica(path, node string) {
	path = clean(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	kept := fs.replicas[path][:0]
	for _, n := range fs.replicas[path] {
		if n != node {
			kept = append(kept, n)
		}
	}
	if len(kept) == 0 {
		delete(fs.replicas, path)
		return
	}
	fs.replicas[path] = kept
}

// Replicas returns the NameNode's replica locations for path, sorted.
func (fs *FileSystem) Replicas(path string) []string {
	path = clean(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return sortedCopy(fs.replicas[path])
}

func sortedCopy(nodes []string) []string {
	out := append([]string(nil), nodes...)
	sort.Strings(out)
	return out
}
