package hdfssim

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/vclock"
)

func TestWriteReadRoundTrip(t *testing.T) {
	fs := New(nil)
	if err := fs.Write("/data/a.txt", []byte("hello"), WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read("/data/a.txt")
	if err != nil || string(got) != "hello" {
		t.Fatalf("read = %q, %v", got, err)
	}
	info, err := fs.Stat("/data/a.txt")
	if err != nil || info.Length != 5 || info.Compressed {
		t.Fatalf("stat = %+v, %v", info, err)
	}
}

func TestCompressedFilesReportMinusOne(t *testing.T) {
	// SPARK-27239 / Figure 2: the file length is overloaded to −1 for
	// compressed data.
	fs := New(nil)
	if err := fs.Write("/warehouse/part-0.gz", []byte("payload"), WriteOptions{Compress: true}); err != nil {
		t.Fatal(err)
	}
	info, err := fs.Stat("/warehouse/part-0.gz")
	if err != nil {
		t.Fatal(err)
	}
	if info.Length != CompressedLength {
		t.Errorf("compressed length = %d, want -1", info.Length)
	}
	if info.RawLength != 7 {
		t.Errorf("raw length = %d", info.RawLength)
	}
	// Content remains readable despite the sentinel.
	data, err := fs.Read("/warehouse/part-0.gz")
	if err != nil || string(data) != "payload" {
		t.Errorf("read = %q, %v", data, err)
	}
}

func TestSafeModeRejectsMutations(t *testing.T) {
	// HBASE-537: mutations against a NameNode in safe mode fail.
	fs := New(nil)
	fs.SetSafeMode(true)
	if err := fs.Write("/x", []byte("1"), WriteOptions{}); !errors.Is(err, ErrSafeMode) {
		t.Errorf("write in safe mode = %v", err)
	}
	fs.SetSafeMode(false)
	if err := fs.Write("/x", []byte("1"), WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	fs.SetSafeMode(true)
	if err := fs.Delete("/x"); !errors.Is(err, ErrSafeMode) {
		t.Errorf("delete in safe mode = %v", err)
	}
	// Reads are allowed in safe mode.
	if _, err := fs.Read("/x"); err != nil {
		t.Errorf("read in safe mode = %v", err)
	}
}

func TestOverwriteSemantics(t *testing.T) {
	fs := New(nil)
	if err := fs.Write("/f", []byte("a"), WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/f", []byte("b"), WriteOptions{}); !errors.Is(err, ErrExists) {
		t.Errorf("non-overwrite = %v", err)
	}
	if err := fs.Write("/f", []byte("b"), WriteOptions{Overwrite: true}); err != nil {
		t.Fatal(err)
	}
	data, _ := fs.Read("/f")
	if string(data) != "b" {
		t.Errorf("data = %q", data)
	}
}

func TestListAndExists(t *testing.T) {
	fs := New(nil)
	for _, p := range []string{"/w/t1/part-0", "/w/t1/part-1", "/w/t2/part-0"} {
		if err := fs.Write(p, nil, WriteOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	got := fs.List("/w/t1")
	if len(got) != 2 || got[0] != "/w/t1/part-0" || got[1] != "/w/t1/part-1" {
		t.Errorf("list = %v", got)
	}
	if !fs.Exists("/w/t2/part-0") || fs.Exists("/nope") {
		t.Error("exists wrong")
	}
}

func TestTokenLifecycle(t *testing.T) {
	// YARN-2790 model: tokens expire on the virtual clock; renewal
	// extends them.
	clock := vclock.New()
	fs := New(clock)
	fs.SetTokenTTL(1000)
	if err := fs.Write("/f", []byte("x"), WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	tok := fs.IssueToken("yarn-rm")
	if _, err := fs.ReadWithToken("/f", tok.ID); err != nil {
		t.Fatalf("fresh token read: %v", err)
	}
	clock.Run(1500)
	if _, err := fs.ReadWithToken("/f", tok.ID); !errors.Is(err, ErrTokenExpired) {
		t.Errorf("expired token read = %v", err)
	}
	if err := fs.RenewToken(tok.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadWithToken("/f", tok.ID); err != nil {
		t.Errorf("renewed token read = %v", err)
	}
	if _, err := fs.ReadWithToken("/f", 999); !errors.Is(err, ErrBadToken) {
		t.Errorf("unknown token = %v", err)
	}
}

func TestLocalityProperty(t *testing.T) {
	// FLINK-13758 model: locality is a custom per-file property.
	fs := New(nil)
	if err := fs.Write("/local", nil, WriteOptions{Local: true}); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/remote", nil, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	li, _ := fs.Stat("/local")
	ri, _ := fs.Stat("/remote")
	if !li.Local || ri.Local {
		t.Errorf("locality: local=%v remote=%v", li.Local, ri.Local)
	}
}

func TestPathNormalization(t *testing.T) {
	fs := New(nil)
	if err := fs.Write("noslash", []byte("x"), WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/noslash") {
		t.Error("path not normalized")
	}
	if err := fs.Write("/trail/", []byte("y"), WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/trail") {
		t.Error("trailing slash not trimmed")
	}
}

func TestReadMissing(t *testing.T) {
	fs := New(nil)
	if _, err := fs.Read("/missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
	if _, err := fs.Stat("/missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
	if err := fs.Delete("/missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestWriteReadPropertyIsolation(t *testing.T) {
	// Data handed to Write and returned from Read is isolated from
	// caller mutation.
	fs := New(nil)
	f := func(data []byte) bool {
		if err := fs.Write("/p", data, WriteOptions{Overwrite: true}); err != nil {
			return false
		}
		if len(data) > 0 {
			data[0] ^= 0xff
		}
		got, err := fs.Read("/p")
		if err != nil || len(got) != len(data) {
			return false
		}
		if len(data) > 0 && got[0] == data[0] {
			return false // mutation leaked in
		}
		got2, _ := fs.Read("/p")
		if len(got) > 0 {
			got[0] ^= 0xff
			if got2[0] == got[0] {
				return false // mutation leaked out
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
