// Package csi defines the shared vocabulary of the cross-system
// interaction (CSI) failure study: the systems under study, the logical
// interaction planes, oracle identifiers, and the discrepancy registry
// keys used across the simulators and the testing framework.
//
// The definitions follow §2 of "Fail through the Cracks: Cross-System
// Interaction Failures in Modern Cloud Systems" (EuroSys '23).
package csi

import "fmt"

// System identifies one of the seven open-source systems in the study
// (Table 1) plus the simulated substrates they interact with.
type System string

// The systems studied in the paper.
const (
	Spark System = "Spark"
	Hive  System = "Hive"
	YARN  System = "YARN"
	HDFS  System = "HDFS"
	Flink System = "Flink"
	Kafka System = "Kafka"
	HBase System = "HBase"
)

// SerDe identifies the serialization/deserialization boundary —
// file-format encode/decode — that every data-plane interaction
// crosses. It is not one of the seven studied systems but is a
// first-class hop in propagation chains (e.g. Spark → SerDe → HDFS).
const SerDe System = "SerDe"

// Systems lists the seven target systems in the order of Table 1.
func Systems() []System {
	return []System{Spark, Hive, YARN, HDFS, Flink, Kafka, HBase}
}

// Plane is a logical interaction plane as defined in §2.2.
type Plane int

// The three planes of §2.2.
const (
	ControlPlane Plane = iota
	DataPlane
	ManagementPlane
)

// String returns the plane name used in the paper's tables.
func (p Plane) String() string {
	switch p {
	case ControlPlane:
		return "Control"
	case DataPlane:
		return "Data"
	case ManagementPlane:
		return "Management"
	default:
		return fmt.Sprintf("Plane(%d)", int(p))
	}
}

// Oracle identifies one of the three test oracles of §8.1.
type Oracle int

// The three oracles applied by the cross-testing framework.
const (
	// OracleWriteRead checks that valid data read back equals the data
	// written earlier, possibly through a different interface.
	OracleWriteRead Oracle = iota
	// OracleErrorHandling checks that invalid data is either rejected or
	// corrected with feedback during the write.
	OracleErrorHandling
	// OracleDifferential checks that results and behavior are consistent
	// across interfaces and backend formats.
	OracleDifferential
	// OracleVersionSkew checks that results and behavior are consistent
	// across writer-stack and reader-stack versions: the same data
	// written/read through differently-versioned deployments of the same
	// systems. It extends the differential oracle along the upgrade
	// axis the paper identifies as a leading CSI failure trigger (§5).
	OracleVersionSkew
	// OraclePartition checks that nodes of a control-plane deployment
	// converge to one view of shared state (leases, replica sets, app
	// state machines, ISR membership, region assignment) when the
	// network between them is cut and held — the CoFI fault model for
	// the control-plane CSI failures the study finds dominate real
	// incidents.
	OraclePartition
)

// String returns the short oracle name used in the artifact's logs
// (wr, eh, difft).
func (o Oracle) String() string {
	switch o {
	case OracleWriteRead:
		return "wr"
	case OracleErrorHandling:
		return "eh"
	case OracleDifferential:
		return "difft"
	case OracleVersionSkew:
		return "skew"
	case OraclePartition:
		return "part"
	default:
		return fmt.Sprintf("Oracle(%d)", int(o))
	}
}

// Interaction names an upstream→downstream relationship from Table 1.
type Interaction struct {
	Upstream   System
	Downstream System
}

// String formats the interaction as "Upstream->Downstream".
func (i Interaction) String() string {
	return string(i.Upstream) + "->" + string(i.Downstream)
}

// IssueID is a JIRA-style issue identifier such as "SPARK-27239".
// Synthesized dataset records use the reserved "CSI-" project prefix.
type IssueID string

// Synthesized reports whether the id denotes a synthesized record rather
// than a real JIRA issue named in the paper.
func (id IssueID) Synthesized() bool {
	return len(id) >= 4 && id[:4] == "CSI-"
}
