package csi

import "testing"

func TestPlaneString(t *testing.T) {
	cases := map[Plane]string{
		ControlPlane:    "Control",
		DataPlane:       "Data",
		ManagementPlane: "Management",
		Plane(9):        "Plane(9)",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(p), got, want)
		}
	}
}

func TestOracleString(t *testing.T) {
	cases := map[Oracle]string{
		OracleWriteRead:     "wr",
		OracleErrorHandling: "eh",
		OracleDifferential:  "difft",
		Oracle(7):           "Oracle(7)",
	}
	for o, want := range cases {
		if got := o.String(); got != want {
			t.Errorf("oracle = %q, want %q", got, want)
		}
	}
}

func TestInteractionString(t *testing.T) {
	i := Interaction{Upstream: Spark, Downstream: Hive}
	if i.String() != "Spark->Hive" {
		t.Errorf("got %q", i.String())
	}
}

func TestIssueIDSynthesized(t *testing.T) {
	if !IssueID("CSI-1001").Synthesized() {
		t.Error("CSI- ids are synthesized")
	}
	for _, id := range []IssueID{"SPARK-27239", "FLINK-12342", "X", ""} {
		if id.Synthesized() {
			t.Errorf("%s should not be synthesized", id)
		}
	}
}

func TestSystemsList(t *testing.T) {
	if len(Systems()) != 7 {
		t.Errorf("systems = %v", Systems())
	}
}
