package obs

import "math"

// Quantile estimates the q-quantile (0 <= q <= 1) of a histogram by
// linear interpolation inside the bucket the target rank lands in —
// the same estimator as PromQL's histogram_quantile, adapted to the
// registry's inclusive (`le`) fixed buckets.
//
// Conventions at the edges:
//   - an empty (or nil) histogram returns NaN — there is no data, and
//     0 would be a lie in a latency report;
//   - a rank landing in the +Inf bucket returns the highest finite
//     bound (the estimator cannot extrapolate past the last edge);
//   - q <= 0 returns 0 (the histogram's implicit lower bound) and
//     q >= 1 degenerates to the last occupied bucket's upper bound.
//
// Interpolation assumes observations are uniform within a bucket, so
// a rank exactly at a bucket's cumulative count lands on the bucket's
// upper bound — the exact-bucket-edge property the tests pin.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	bounds, counts, _, _, total := h.snapshot()
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if rank > cum {
			continue
		}
		if i >= len(bounds) {
			// +Inf bucket: clamp to the largest finite edge.
			if len(bounds) == 0 {
				return math.NaN()
			}
			return bounds[len(bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = bounds[i-1]
		}
		upper := bounds[i]
		frac := (rank - prev) / float64(c)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return lower + (upper-lower)*frac
	}
	// rank == total fell through floating-point comparison; return the
	// last occupied bucket's upper bound.
	for i := len(counts) - 1; i >= 0; i-- {
		if counts[i] > 0 {
			if i >= len(bounds) {
				if len(bounds) == 0 {
					return math.NaN()
				}
				return bounds[len(bounds)-1]
			}
			return bounds[i]
		}
	}
	return math.NaN()
}
