package obs

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/csi"
)

// Hop is one system-level step of a cross-system propagation chain.
type Hop struct {
	System csi.System
	Plane  csi.Plane
	Name   string // the first span folded into the hop
	Spans  int    // spans folded into the hop
	Error  string // first error observed within the hop
}

// Failed reports whether any span folded into the hop recorded an
// error.
func (h Hop) Failed() bool { return h.Error != "" }

// Chain reconstructs the cross-system propagation chain of the
// subtree rooted at root, or of the whole trace when root is nil:
// spans are ordered causally (start time, then creation order) and
// consecutive spans of the same system fold into one hop. The result
// reads the way the paper narrates its incidents — which system an
// interaction entered, where it went next, and where it failed.
func (t *Tracer) Chain(root *Span) []Hop {
	spans := t.Snapshot()
	if root != nil {
		spans = subtree(spans, root.ID)
	}
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].StartMs != spans[j].StartMs {
			return spans[i].StartMs < spans[j].StartMs
		}
		return spans[i].ID < spans[j].ID
	})
	var hops []Hop
	for _, s := range spans {
		if n := len(hops); n > 0 && hops[n-1].System == s.System {
			h := &hops[n-1]
			h.Spans++
			if h.Error == "" {
				h.Error = s.Error
			}
			continue
		}
		hops = append(hops, Hop{System: s.System, Plane: s.Plane, Name: s.Name, Spans: 1, Error: s.Error})
	}
	return hops
}

// subtree keeps the spans rooted at rootID. Parents are created before
// children, so one forward pass suffices.
func subtree(spans []Span, rootID int64) []Span {
	in := map[int64]bool{rootID: true}
	var out []Span
	for _, s := range spans {
		if in[s.ID] || in[s.ParentID] {
			in[s.ID] = true
			out = append(out, s)
		}
	}
	return out
}

// maxRenderHops caps rendered chains: a request storm folds into long
// alternating System↔System tails that repeat without adding
// information.
const maxRenderHops = 12

// RenderChain renders hops as
//
//	Flink/request-containers → YARN/allocate(x12) → Flink ✗
//
// marking failed hops with ✗ and eliding the middle of very long
// chains.
func RenderChain(hops []Hop) string {
	labels := make([]string, 0, len(hops))
	for _, h := range hops {
		labels = append(labels, renderHop(h))
	}
	if len(labels) > maxRenderHops {
		elided := len(labels) - (maxRenderHops - 1)
		head := labels[:maxRenderHops-2]
		tail := labels[len(labels)-1]
		labels = append(append(head, fmt.Sprintf("⋯(+%d hops)", elided)), tail)
	}
	return strings.Join(labels, " → ")
}

func renderHop(h Hop) string {
	label := string(h.System)
	if h.Name != "" {
		label += "/" + h.Name
	}
	if h.Spans > 1 {
		label += fmt.Sprintf("(x%d)", h.Spans)
	}
	if h.Failed() {
		label += " ✗"
	}
	return label
}

// Systems returns the distinct systems in hop order, each once.
func Systems(hops []Hop) []csi.System {
	seen := map[csi.System]bool{}
	var out []csi.System
	for _, h := range hops {
		if !seen[h.System] {
			seen[h.System] = true
			out = append(out, h.System)
		}
	}
	return out
}
