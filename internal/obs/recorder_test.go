package obs

import (
	"sync"
	"testing"
)

// TestRecorderRingSemantics pins the flight-recorder contract: a full
// ring drops the oldest events, sequence numbers stay global and
// monotonic, and Events returns oldest-first.
func TestRecorderRingSemantics(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{Type: EvCacheHit, Detail: string(rune('a' + i))})
	}
	if r.Total() != 10 {
		t.Errorf("Total = %d, want 10", r.Total())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Seq != want {
			t.Errorf("event %d seq = %d, want %d", i, ev.Seq, want)
		}
		if ev.TimeNs == 0 {
			t.Errorf("event %d not timestamped", i)
		}
	}
	if evs[0].Detail != "g" || evs[3].Detail != "j" {
		t.Errorf("ring kept wrong window: %+v", evs)
	}
}

// TestRecorderPartialRing covers the not-yet-wrapped case.
func TestRecorderPartialRing(t *testing.T) {
	r := NewRecorder(8)
	r.Record(Event{Type: EvJobAdmitted, Job: "job-1"})
	r.Record(Event{Type: EvJobDone, Job: "job-1"})
	evs := r.Events()
	if len(evs) != 2 || evs[0].Seq != 0 || evs[1].Seq != 1 {
		t.Fatalf("events = %+v", evs)
	}
	if evs[0].Type != EvJobAdmitted || evs[1].Type != EvJobDone {
		t.Errorf("order wrong: %+v", evs)
	}
}

// TestNilRecorderIsNoOp: like every obs entry point, a disabled
// recorder is a nil pointer and every call on it is safe.
func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Record(Event{Type: EvDrainBegin})
	if r.Total() != 0 || r.Events() != nil {
		t.Error("nil recorder retained state")
	}
}

// TestDisabledRecorderAllocationFree pins the zero-allocations-when-
// disabled acceptance criterion for the recording hot path.
func TestDisabledRecorderAllocationFree(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(Event{Type: EvOracleFailure, Job: "job-000001", Detail: "sig"})
	})
	if allocs != 0 {
		t.Errorf("disabled recorder allocates %.1f/op, want 0", allocs)
	}
}

// TestEnabledRecorderAllocationFree: once the ring exists, recording
// itself never allocates either — the buffer is fixed-size.
func TestEnabledRecorderAllocationFree(t *testing.T) {
	r := NewRecorder(16)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(Event{Type: EvCacheMiss, Job: "job-000001"})
	})
	if allocs != 0 {
		t.Errorf("enabled recorder allocates %.1f/op, want 0", allocs)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Record(Event{Type: EvCacheHit})
			}
		}()
	}
	wg.Wait()
	if r.Total() != 1600 {
		t.Errorf("Total = %d, want 1600", r.Total())
	}
	evs := r.Events()
	if len(evs) != 64 {
		t.Fatalf("retained %d, want 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("gap in retained window at %d: %d -> %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}
