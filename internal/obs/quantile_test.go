package obs

import (
	"math"
	"testing"
)

func quantileHist(t *testing.T, obs ...float64) *Histogram {
	t.Helper()
	h := NewRegistry().Histogram("q_test", []float64{10, 20, 50, 100})
	for _, v := range obs {
		h.Observe(v)
	}
	return h
}

// TestQuantileEmptyAndNil pins the no-data convention: NaN, never a
// fabricated 0 in a latency report.
func TestQuantileEmptyAndNil(t *testing.T) {
	if got := quantileHist(t).Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty histogram P50 = %v, want NaN", got)
	}
	var h *Histogram
	if got := h.Quantile(0.99); !math.IsNaN(got) {
		t.Errorf("nil histogram P99 = %v, want NaN", got)
	}
}

// TestQuantileExactBucketEdge pins the inclusive-bound convention: a
// rank landing exactly on a bucket's cumulative count interpolates to
// that bucket's upper edge.
func TestQuantileExactBucketEdge(t *testing.T) {
	// 4 observations in (0,10], 4 in (10,20]: P50's rank (4) is exactly
	// the first bucket's cumulative count, so P50 is its upper bound.
	h := quantileHist(t, 1, 2, 3, 4, 11, 12, 13, 14)
	if got := h.Quantile(0.5); got != 10 {
		t.Errorf("P50 = %v, want exactly the bucket edge 10", got)
	}
	if got := h.Quantile(1); got != 20 {
		t.Errorf("P100 = %v, want the last occupied bucket's bound 20", got)
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("P0 = %v, want the implicit lower bound 0", got)
	}
}

// TestQuantileInterpolates pins the PromQL-style linear interpolation
// inside a bucket.
func TestQuantileInterpolates(t *testing.T) {
	// All 10 observations in (20,50]: P50's rank is halfway through the
	// bucket, so the estimate is its midpoint.
	obs := make([]float64, 10)
	for i := range obs {
		obs[i] = 30
	}
	h := quantileHist(t, obs...)
	if got := h.Quantile(0.5); got != 35 {
		t.Errorf("P50 = %v, want midpoint 35 of (20,50]", got)
	}
	if got := h.Quantile(0.1); got != 23 {
		t.Errorf("P10 = %v, want 23 (10%% into (20,50])", got)
	}
}

// TestQuantileOverflowBucket pins the +Inf clamp: ranks past the last
// finite edge return that edge rather than extrapolating.
func TestQuantileOverflowBucket(t *testing.T) {
	h := quantileHist(t, 5, 500, 900)
	if got := h.Quantile(0.99); got != 100 {
		t.Errorf("P99 = %v, want the largest finite bound 100", got)
	}
	// Out-of-range q clamps rather than panicking.
	if got := h.Quantile(1.5); got != 100 {
		t.Errorf("q=1.5 = %v, want 100", got)
	}
	if got := h.Quantile(-0.5); got != quantileHist(t, 5, 500, 900).Quantile(0) {
		t.Errorf("q=-0.5 = %v, want the q=0 value", got)
	}
}

// TestQuantileMonotone: quantiles never decrease in q.
func TestQuantileMonotone(t *testing.T) {
	h := quantileHist(t, 1, 5, 12, 18, 25, 40, 60, 95, 150, 300)
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		got := h.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile(%0.2f) = %v < Quantile(prev) = %v", q, got, prev)
		}
		prev = got
	}
}
