package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes the registry in the Prometheus text
// exposition format, families sorted by name and series by label set.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fam := r.families[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, fam.kind); err != nil {
			return err
		}
		keys := make([]string, 0, len(fam.series))
		for key := range fam.series {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			if err := writeSeries(w, name, key, fam, fam.series[key]); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, name, key string, fam *family, s any) error {
	switch m := s.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, key, m.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, key, formatFloat(m.Value()))
		return err
	case *Histogram:
		bounds, counts, exemplars, sum, count := m.snapshot()
		cum := int64(0)
		for i, b := range bounds {
			cum += counts[i]
			le := append(append([]Attr(nil), fam.labels[key]...), Attr{Key: "le", Value: formatFloat(b)})
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n", name, labelKey(le), cum, exemplarSuffix(exemplars, i)); err != nil {
				return err
			}
		}
		inf := append(append([]Attr(nil), fam.labels[key]...), Attr{Key: "le", Value: "+Inf"})
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n", name, labelKey(inf), count, exemplarSuffix(exemplars, len(bounds))); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, key, formatFloat(sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, key, count)
		return err
	default:
		return fmt.Errorf("obs: unknown series type %T", s)
	}
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// exemplarSuffix renders bucket i's exemplar in the OpenMetrics
// syntax — ` # {trace_id="..."} value` — or "" when the bucket has
// none. Plain Prometheus scrapers that predate OpenMetrics should use
// ParsePrometheus, which strips the suffix.
func exemplarSuffix(exemplars []Exemplar, i int) string {
	if i >= len(exemplars) || exemplars[i].TraceID == "" {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=%q} %s", exemplars[i].TraceID, formatFloat(exemplars[i].Value))
}

// metricJSON is the export shape of one series.
type metricJSON struct {
	Name      string              `json:"name"`
	Kind      string              `json:"kind"`
	Labels    map[string]string   `json:"labels,omitempty"`
	Value     *float64            `json:"value,omitempty"`
	Sum       *float64            `json:"sum,omitempty"`
	Count     *int64              `json:"count,omitempty"`
	Buckets   map[string]int64    `json:"buckets,omitempty"`
	Exemplars map[string]Exemplar `json:"exemplars,omitempty"`
}

// WriteJSON writes the registry as a JSON array of series, sorted like
// the Prometheus exposition.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	var rows []metricJSON
	for _, name := range names {
		fam := r.families[name]
		keys := make([]string, 0, len(fam.series))
		for key := range fam.series {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			row := metricJSON{Name: name, Kind: fam.kind}
			if attrs := fam.labels[key]; len(attrs) > 0 {
				row.Labels = map[string]string{}
				for _, a := range attrs {
					row.Labels[a.Key] = a.Value
				}
			}
			switch m := fam.series[key].(type) {
			case *Counter:
				v := float64(m.Value())
				row.Value = &v
			case *Gauge:
				v := m.Value()
				row.Value = &v
			case *Histogram:
				bounds, counts, exemplars, sum, count := m.snapshot()
				row.Sum, row.Count = &sum, &count
				row.Buckets = map[string]int64{}
				cum := int64(0)
				for i, b := range bounds {
					cum += counts[i]
					row.Buckets[formatFloat(b)] = cum
					if i < len(exemplars) && exemplars[i].TraceID != "" {
						if row.Exemplars == nil {
							row.Exemplars = map[string]Exemplar{}
						}
						row.Exemplars[formatFloat(b)] = exemplars[i]
					}
				}
				row.Buckets["+Inf"] = count
				if i := len(bounds); i < len(exemplars) && exemplars[i].TraceID != "" {
					if row.Exemplars == nil {
						row.Exemplars = map[string]Exemplar{}
					}
					row.Exemplars["+Inf"] = exemplars[i]
				}
			}
			rows = append(rows, row)
		}
	}
	r.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// ParsePrometheus parses the text exposition format back into a map
// from "name{labels}" to value, validating each line's syntax. It
// accepts the subset WritePrometheus emits (comments, blank lines,
// "metric value" samples, and OpenMetrics exemplar suffixes, which are
// stripped).
func ParsePrometheus(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		text = strings.TrimSpace(stripExemplar(text))
		sp := strings.LastIndexByte(text, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("obs: line %d: no value in %q", line, text)
		}
		metric, raw := text[:sp], text[sp+1:]
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: bad value %q: %v", line, raw, err)
		}
		if err := validateMetricRef(metric); err != nil {
			return nil, fmt.Errorf("obs: line %d: %v", line, err)
		}
		out[metric] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// validateMetricRef checks "name" or "name{k=\"v\",...}".
func validateMetricRef(s string) error {
	name := s
	if i := strings.IndexByte(s, '{'); i >= 0 {
		name = s[:i]
		if !strings.HasSuffix(s, "}") {
			return fmt.Errorf("unterminated label set in %q", s)
		}
		body := s[i+1 : len(s)-1]
		for _, part := range splitLabels(body) {
			k, v, ok := strings.Cut(part, "=")
			if !ok || !validName(k) || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return fmt.Errorf("bad label %q in %q", part, s)
			}
		}
	}
	if !validName(name) {
		return fmt.Errorf("bad metric name %q", name)
	}
	return nil
}

// stripExemplar drops an OpenMetrics exemplar suffix (` # {...} v`)
// from a sample line. The marker is only honored outside quoted label
// values, so a label value containing " # " cannot truncate the
// sample.
func stripExemplar(s string) string {
	quoted := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				quoted = !quoted
			}
		case '#':
			if !quoted && i > 0 && s[i-1] == ' ' {
				return s[:i-1]
			}
		}
	}
	return s
}

// splitLabels splits on commas outside quoted values.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		alpha := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}
