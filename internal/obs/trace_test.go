package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/csi"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	sp := tr.Span(nil, csi.Spark, csi.DataPlane, "root")
	if sp != nil {
		t.Fatalf("nil tracer returned span %v", sp)
	}
	// Every span method must tolerate the nil chain.
	sp.Set("k", "v").Fail(fmt.Errorf("x")).End()
	if c := sp.Child(csi.HDFS, csi.DataPlane, "child"); c != nil {
		t.Fatalf("nil span child = %v", c)
	}
	if tr.Len() != 0 || tr.Snapshot() != nil || tr.Chain(nil) != nil {
		t.Error("nil tracer leaked state")
	}
	tr.SetClock(nil)
}

func TestStepClockCausalOrder(t *testing.T) {
	tr := NewTracer(nil)
	root := tr.Span(nil, csi.Spark, csi.DataPlane, "root")
	a := root.Child(csi.SerDe, csi.DataPlane, "encode")
	a.End()
	b := root.Child(csi.HDFS, csi.DataPlane, "write")
	b.End()
	root.End()
	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].StartMs <= spans[i-1].StartMs {
			t.Errorf("step clock not monotonic: %d then %d", spans[i-1].StartMs, spans[i].StartMs)
		}
		if spans[i].ID <= spans[i-1].ID {
			t.Errorf("ids not monotonic")
		}
	}
	if spans[1].ParentID != spans[0].ID || spans[2].ParentID != spans[0].ID {
		t.Errorf("parent links wrong: %+v", spans)
	}
	if spans[0].EndMs < spans[2].StartMs {
		t.Errorf("root ended (%d) before last child started (%d)", spans[0].EndMs, spans[2].StartMs)
	}
}

// TestConcurrentEmitters exercises the tracer from many goroutines;
// run under -race this is the concurrency guarantee of the package.
func TestConcurrentEmitters(t *testing.T) {
	tr := NewTracer(nil)
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				root := tr.Span(nil, csi.Flink, csi.ControlPlane, fmt.Sprintf("req-%d-%d", w, i))
				child := root.Child(csi.YARN, csi.ControlPlane, "allocate")
				child.Set("worker", fmt.Sprint(w))
				if i%7 == 0 {
					child.Fail(fmt.Errorf("alloc failed"))
				}
				child.End()
				root.End()
			}
		}(w)
	}
	wg.Wait()
	spans := tr.Snapshot()
	if len(spans) != workers*perWorker*2 {
		t.Fatalf("got %d spans, want %d", len(spans), workers*perWorker*2)
	}
	byID := map[int64]Span{}
	for _, s := range spans {
		byID[s.ID] = s
	}
	for _, s := range spans {
		if s.ParentID == 0 {
			continue
		}
		parent, ok := byID[s.ParentID]
		if !ok {
			t.Fatalf("span %d has unknown parent %d", s.ID, s.ParentID)
		}
		// Parent/child ordering: a child starts after its parent and
		// the parent (ended after the child in this workload) ends
		// after the child ends.
		if s.StartMs <= parent.StartMs {
			t.Errorf("child %d started at %d, parent at %d", s.ID, s.StartMs, parent.StartMs)
		}
		if parent.EndMs < s.EndMs {
			t.Errorf("parent %d ended at %d before child end %d", parent.ID, parent.EndMs, s.EndMs)
		}
	}
}

func TestWriteSpansJSONL(t *testing.T) {
	tr := NewTracer(nil)
	root := tr.Span(nil, csi.Spark, csi.DataPlane, "case")
	root.Set("table", "t1")
	root.Child(csi.HDFS, csi.DataPlane, "write").Fail(fmt.Errorf("safe mode")).End()
	root.End()
	var buf bytes.Buffer
	if err := tr.WriteSpans(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines: %q", len(lines), buf.String())
	}
	var row map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &row); err != nil {
		t.Fatal(err)
	}
	if row["system"] != "HDFS" || row["error"] != "safe mode" || row["plane"] != "Data" {
		t.Errorf("row = %v", row)
	}
}

type fakeClock struct{ t int64 }

func (c *fakeClock) Now() int64 { return c.t }

func TestSetClock(t *testing.T) {
	tr := NewTracer(nil)
	clk := &fakeClock{t: 42}
	tr.SetClock(clk)
	sp := tr.Span(nil, csi.YARN, csi.ControlPlane, "alloc")
	clk.t = 99
	sp.End()
	got := tr.Snapshot()[0]
	if got.StartMs != 42 || got.EndMs != 99 {
		t.Errorf("span times = %d..%d, want 42..99", got.StartMs, got.EndMs)
	}
}

// TestTracerCap: a capped tracer drops the oldest half of its spans
// at the cap, keeps IDs monotonic, and never exceeds the bound — so a
// long-running service can leave tracing on forever.
func TestTracerCap(t *testing.T) {
	tr := NewTracer(nil)
	tr.SetCap(8)
	for i := 0; i < 100; i++ {
		tr.Span(nil, csi.Spark, csi.DataPlane, "case").End()
		if tr.Len() > 8 {
			t.Fatalf("tracer grew to %d spans past cap 8", tr.Len())
		}
	}
	spans := tr.Snapshot()
	if len(spans) == 0 {
		t.Fatal("capped tracer retained nothing")
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].ID <= spans[i-1].ID {
			t.Fatalf("IDs not monotonic after eviction: %d then %d", spans[i-1].ID, spans[i].ID)
		}
	}
	if newest := spans[len(spans)-1].ID; newest != 100 {
		t.Errorf("newest span ID = %d, want 100 (eviction must drop the oldest)", newest)
	}
	var nilTr *Tracer
	nilTr.SetCap(4) // nil-safe like every obs entry point
}

// TestSpanTraceID pins the exemplar trace-ID format and nil-safety.
func TestSpanTraceID(t *testing.T) {
	tr := NewTracer(nil)
	sp := tr.Span(nil, csi.Spark, csi.DataPlane, "job/fuzz")
	if got := sp.TraceID(); got != "00000001" {
		t.Errorf("TraceID = %q, want 00000001", got)
	}
	var nilSpan *Span
	if nilSpan.TraceID() != "" {
		t.Error("nil span has a trace ID")
	}
}

func BenchmarkDisabledSpan(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Span(nil, csi.Spark, csi.DataPlane, "case")
		sp.Child(csi.HDFS, csi.DataPlane, "write").Fail(nil).End()
		sp.End()
	}
}
