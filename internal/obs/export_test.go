package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestPrometheusLabelEscaping: label values containing quotes,
// backslashes, and newlines must round-trip through the text
// exposition — the exporter escapes them, the parser validates and
// preserves the escaped spelling.
func TestPrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("errors_total", "detail", `read "foo" failed`).Inc()
	r.Counter("errors_total", "detail", `path C:\tmp\x`).Add(2)
	r.Counter("errors_total", "detail", "line1\nline2").Add(3)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if strings.Count(text, "\n") != 4 { // 1 TYPE line + 3 samples
		t.Fatalf("escaped newline leaked into the exposition:\n%s", text)
	}
	got, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("escaped exposition did not parse: %v\n%s", err, text)
	}
	want := map[string]float64{
		`errors_total{detail="read \"foo\" failed"}`: 1,
		`errors_total{detail="path C:\\tmp\\x"}`:     2,
		`errors_total{detail="line1\nline2"}`:        3,
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %v, want %v (parsed %v)", k, got[k], v, got)
		}
	}
}

// TestHistogramExactEdgeValues: observations exactly on a bucket bound
// are inclusive (`le` semantics), negatives land in the first bucket,
// and values beyond the last bound land only in +Inf.
func TestHistogramExactEdgeValues(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edge_ms", []float64{0, 1, 10})
	for _, v := range []float64{-5, 0, 0, 1, 10, 10.0000001, math.MaxFloat64} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParsePrometheus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		`edge_ms_bucket{le="0"}`:    3, // -5, 0, 0
		`edge_ms_bucket{le="1"}`:    4, // + exactly 1
		`edge_ms_bucket{le="10"}`:   5, // + exactly 10
		`edge_ms_bucket{le="+Inf"}`: 7,
		`edge_ms_count`:             7,
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %v, want %v", k, got[k], v)
		}
	}
}

// TestEmptyRegistryExportRoundTrip: a registry with no series exports
// cleanly in both formats, and both exports parse back to emptiness.
func TestEmptyRegistryExportRoundTrip(t *testing.T) {
	r := NewRegistry()
	var prom bytes.Buffer
	if err := r.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if prom.Len() != 0 {
		t.Errorf("empty registry wrote %q", prom.String())
	}
	got, err := ParsePrometheus(&prom)
	if err != nil {
		t.Fatalf("empty exposition did not parse: %v", err)
	}
	if len(got) != 0 {
		t.Errorf("parsed %v from empty exposition", got)
	}
	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var rows []metricJSON
	if err := json.Unmarshal(js.Bytes(), &rows); err != nil {
		t.Fatalf("empty JSON export invalid: %v\n%s", err, js.String())
	}
	if len(rows) != 0 {
		t.Errorf("empty registry exported %d rows", len(rows))
	}
}

// TestHistogramExemplars: an exemplar-carrying observation lands in
// the right bucket, is exported in the OpenMetrics suffix syntax, and
// ParsePrometheus still reads the samples underneath.
func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("stage_ms", []float64{1, 10}, "stage", "run")
	h.ObserveExemplar(0.5, "0000002a")
	h.ObserveExemplar(7, "0000002b")
	h.Observe(5) // exemplar-free: must not disturb bucket 10's exemplar
	h.ObserveExemplar(99, "0000002c")

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`stage_ms_bucket{stage="run",le="1"} 1 # {trace_id="0000002a"} 0.5`,
		`stage_ms_bucket{stage="run",le="10"} 3 # {trace_id="0000002b"} 7`,
		`stage_ms_bucket{stage="run",le="+Inf"} 4 # {trace_id="0000002c"} 99`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	got, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exemplar exposition did not parse: %v\n%s", err, text)
	}
	if got[`stage_ms_bucket{stage="run",le="10"}`] != 3 || got[`stage_ms_count{stage="run"}`] != 4 {
		t.Errorf("parsed samples wrong: %v", got)
	}

	// Later exemplars replace earlier ones in the same bucket.
	h.ObserveExemplar(0.25, "0000002d")
	buf.Reset()
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `# {trace_id="0000002d"} 0.25`) {
		t.Errorf("exemplar not replaced:\n%s", buf.String())
	}

	// JSON export carries the exemplars keyed by bucket bound.
	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var rows []metricJSON
	if err := json.Unmarshal(js.Bytes(), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Exemplars["+Inf"].TraceID != "0000002c" || rows[0].Exemplars["1"].TraceID != "0000002d" {
		t.Errorf("JSON exemplars = %+v", rows[0].Exemplars)
	}
}

// TestExemplarFreeHistogramUnchanged: a histogram that never sees an
// exemplar exports byte-identically to the pre-exemplar format.
func TestExemplarFreeHistogramUnchanged(t *testing.T) {
	r := NewRegistry()
	r.Histogram("plain_ms", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "#  ") || strings.Contains(buf.String(), "} # ") || strings.Contains(buf.String(), "trace_id") {
		t.Errorf("exemplar syntax leaked into exemplar-free export:\n%s", buf.String())
	}
	want := "# TYPE plain_ms histogram\nplain_ms_bucket{le=\"1\"} 1\nplain_ms_bucket{le=\"+Inf\"} 1\nplain_ms_sum 0.5\nplain_ms_count 1\n"
	if buf.String() != want {
		t.Errorf("export changed shape:\n got %q\nwant %q", buf.String(), want)
	}
}

// TestStripExemplar covers the quote-awareness of the parser's
// exemplar stripping: a " # " inside a quoted label value is data.
func TestStripExemplar(t *testing.T) {
	for in, want := range map[string]string{
		`m_bucket{le="1"} 3 # {trace_id="ab"} 0.5`: `m_bucket{le="1"} 3`,
		`m{k="a # b"} 2`: `m{k="a # b"} 2`,
		`m 1`:            `m 1`,
	} {
		if got := stripExemplar(in); got != want {
			t.Errorf("stripExemplar(%q) = %q, want %q", in, got, want)
		}
	}
}
