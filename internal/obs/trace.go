// Package obs is the zero-dependency observability layer of the
// reproduction: causal span tracing across cross-system boundaries,
// counters/gauges/fixed-bucket histograms with Prometheus-text and
// JSON exporters, and the propagation-chain reconstruction that
// renders how a failure cascaded across systems — the way the paper's
// Figure 1–3 narratives do by hand.
//
// The paper's diagnosis problem is that each system's logs are siloed,
// so cross-system interaction failures "fall through the cracks".
// Spans here are tagged with the system and interaction plane from
// internal/csi, so one trace spans every boundary a request crossed.
//
// Everything is nil-safe: a nil *Tracer or *Registry (and the nil
// spans and metrics they hand out) turns every call into a no-op, so
// instrumented code paths stay allocation-free when observability is
// disabled.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/csi"
)

// Clock is the tracer's time source in milliseconds. *vclock.Sim
// satisfies it; a nil clock falls back to a monotonic step counter
// that still preserves causal order.
type Clock interface{ Now() int64 }

// WallClock is a Clock over real time, for long-running services
// (crossd) whose spans should carry wall-clock milliseconds rather
// than virtual or step time.
type WallClock struct{}

// Now returns the current wall time in Unix milliseconds.
func (WallClock) Now() int64 { return time.Now().UnixMilli() }

// Tracer records spans. It is safe for concurrent use: span creation
// and mutation synchronize on the tracer's lock.
type Tracer struct {
	mu    sync.Mutex
	clock Clock
	ticks int64
	seq   int64
	cap   int // 0 = unbounded
	spans []*Span
}

// NewTracer creates a tracer on the given clock (nil for step time).
func NewTracer(clock Clock) *Tracer { return &Tracer{clock: clock} }

// SetClock replaces the time source — typically once a scenario's
// virtual clock exists.
func (t *Tracer) SetClock(c Clock) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.clock = c
	t.mu.Unlock()
}

// SetCap bounds the number of retained spans (0 = unbounded, the
// default). When the cap is reached, the oldest half of the retained
// spans is dropped, so a long-running service traces forever in
// bounded memory — like the flight recorder, recent history wins.
// Chains reconstructed for dropped spans come back partial or empty.
func (t *Tracer) SetCap(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.cap = n
	t.mu.Unlock()
}

// Attr is one span attribute.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Well-known attribute keys. Version-skew runs label every case span
// with the writer and reader stack versions, so a propagation chain
// read off a trace identifies which deployment generation each hop ran
// under — the context §5's upgrade-triggered failures lack in siloed
// per-system logs.
const (
	// AttrWriterStack is the writer deployment's "spark/hive" version pair.
	AttrWriterStack = "writer.versions"
	// AttrReaderStack is the reader deployment's "spark/hive" version pair.
	AttrReaderStack = "reader.versions"
)

// Span is one traced operation at (or inside) a cross-system boundary.
// Fields are written under the tracer's lock; read them from Snapshot
// copies when other goroutines may still be emitting.
type Span struct {
	tr       *Tracer
	ID       int64
	ParentID int64 // 0 for root spans
	System   csi.System
	Plane    csi.Plane
	Name     string
	StartMs  int64
	EndMs    int64 // -1 while open
	Error    string
	Attrs    []Attr
}

// now must be called with t.mu held.
func (t *Tracer) now() int64 {
	if t.clock != nil {
		return t.clock.Now()
	}
	t.ticks++
	return t.ticks
}

// Span starts a span under parent (nil for a root span).
func (t *Tracer) Span(parent *Span, system csi.System, plane csi.Plane, name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	s := &Span{tr: t, ID: t.seq, System: system, Plane: plane, Name: name, StartMs: t.now(), EndMs: -1}
	if parent != nil {
		s.ParentID = parent.ID
	}
	if t.cap > 0 && len(t.spans) >= t.cap {
		// Copy into a fresh slice so the dropped half is released.
		t.spans = append(t.spans[:0:0], t.spans[len(t.spans)/2:]...)
	}
	t.spans = append(t.spans, s)
	return s
}

// TraceID returns a stable hex identifier for the span, usable as a
// histogram exemplar trace ID that joins back to the span chain; empty
// for nil spans.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return fmt.Sprintf("%08x", s.ID)
}

// Child starts a span under s.
func (s *Span) Child(system csi.System, plane csi.Plane, name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.Span(s, system, plane, name)
}

// Set attaches an attribute, returning s for chaining.
func (s *Span) Set(key, value string) *Span {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
	s.tr.mu.Unlock()
	return s
}

// Fail records the error on the span; a nil error is a no-op.
func (s *Span) Fail(err error) *Span {
	if s == nil || err == nil {
		return s
	}
	s.tr.mu.Lock()
	s.Error = err.Error()
	s.tr.mu.Unlock()
	return s
}

// End closes the span. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.EndMs < 0 {
		s.EndMs = s.tr.now()
	}
	s.tr.mu.Unlock()
}

// Len returns the number of spans recorded so far.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Snapshot returns value copies of every span in creation order.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	for i, s := range t.spans {
		out[i] = *s
		out[i].Attrs = append([]Attr(nil), s.Attrs...)
	}
	return out
}

// spanJSON is the export shape of one span.
type spanJSON struct {
	ID     int64      `json:"id"`
	Parent int64      `json:"parent,omitempty"`
	System csi.System `json:"system"`
	Plane  string     `json:"plane"`
	Name   string     `json:"name"`
	Start  int64      `json:"start_ms"`
	End    int64      `json:"end_ms"`
	Error  string     `json:"error,omitempty"`
	Attrs  []Attr     `json:"attrs,omitempty"`
}

// WriteSpans writes the trace as JSON lines, one span per line, in
// creation order.
func (t *Tracer) WriteSpans(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range t.Snapshot() {
		row := spanJSON{
			ID: s.ID, Parent: s.ParentID, System: s.System, Plane: s.Plane.String(),
			Name: s.Name, Start: s.StartMs, End: s.EndMs, Error: s.Error, Attrs: s.Attrs,
		}
		if err := enc.Encode(row); err != nil {
			return err
		}
	}
	return nil
}
