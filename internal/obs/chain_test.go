package obs

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/csi"
)

func TestChainFoldsConsecutiveSystems(t *testing.T) {
	tr := NewTracer(nil)
	root := tr.Span(nil, csi.Spark, csi.DataPlane, "dataframe/save")
	root.Child(csi.Hive, csi.DataPlane, "metastore/create-table").End()
	root.Child(csi.SerDe, csi.DataPlane, "avro/encode").End()
	w := root.Child(csi.HDFS, csi.DataPlane, "warehouse/write")
	w.End()
	root.Child(csi.HDFS, csi.DataPlane, "warehouse/write").End() // second part file folds
	read := tr.Span(nil, csi.Hive, csi.DataPlane, "hiveql/select")
	read.Child(csi.SerDe, csi.DataPlane, "avro/decode").Fail(fmt.Errorf("cannot decode")).End()
	read.End()
	root.End()

	hops := tr.Chain(nil)
	var systems []string
	for _, h := range hops {
		systems = append(systems, string(h.System))
	}
	want := []string{"Spark", "Hive", "SerDe", "HDFS", "Hive", "SerDe"}
	if strings.Join(systems, ",") != strings.Join(want, ",") {
		t.Fatalf("chain systems = %v, want %v", systems, want)
	}
	if hops[3].Spans != 2 {
		t.Errorf("HDFS hop folded %d spans, want 2", hops[3].Spans)
	}
	last := hops[len(hops)-1]
	if !last.Failed() || last.Error != "cannot decode" {
		t.Errorf("failing hop = %+v", last)
	}
	rendered := RenderChain(hops)
	if !strings.Contains(rendered, "Spark/dataframe/save → Hive/metastore/create-table") {
		t.Errorf("render = %q", rendered)
	}
	if !strings.Contains(rendered, "HDFS/warehouse/write(x2)") {
		t.Errorf("render lost fold count: %q", rendered)
	}
	if !strings.HasSuffix(rendered, "✗") {
		t.Errorf("render does not mark failure: %q", rendered)
	}
}

func TestChainSubtreeIsolatesCases(t *testing.T) {
	tr := NewTracer(nil)
	// Two interleaved cases, as under a parallel harness run.
	a := tr.Span(nil, csi.Spark, csi.DataPlane, "case-a")
	b := tr.Span(nil, csi.Hive, csi.DataPlane, "case-b")
	a.Child(csi.HDFS, csi.DataPlane, "write").End()
	b.Child(csi.Kafka, csi.DataPlane, "produce").End()
	a.End()
	b.End()
	hopsA := tr.Chain(a)
	if len(hopsA) != 2 || hopsA[0].System != csi.Spark || hopsA[1].System != csi.HDFS {
		t.Errorf("subtree chain A = %+v", hopsA)
	}
	hopsB := tr.Chain(b)
	if len(hopsB) != 2 || hopsB[0].System != csi.Hive || hopsB[1].System != csi.Kafka {
		t.Errorf("subtree chain B = %+v", hopsB)
	}
}

func TestRenderChainElidesLongTails(t *testing.T) {
	tr := NewTracer(nil)
	for i := 0; i < 40; i++ {
		tr.Span(nil, csi.Flink, csi.ControlPlane, "request").End()
		tr.Span(nil, csi.YARN, csi.ControlPlane, "allocate").End()
	}
	hops := tr.Chain(nil)
	if len(hops) != 80 {
		t.Fatalf("hops = %d", len(hops))
	}
	rendered := RenderChain(hops)
	if n := strings.Count(rendered, "→"); n > maxRenderHops {
		t.Errorf("rendered %d arrows: %q", n, rendered)
	}
	if !strings.Contains(rendered, "hops)") {
		t.Errorf("no elision marker: %q", rendered)
	}
}

func TestSystemsDedup(t *testing.T) {
	hops := []Hop{{System: csi.Flink}, {System: csi.YARN}, {System: csi.Flink}}
	got := Systems(hops)
	if len(got) != 2 || got[0] != csi.Flink || got[1] != csi.YARN {
		t.Errorf("Systems = %v", got)
	}
}
