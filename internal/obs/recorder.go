package obs

import (
	"sync"
	"time"
)

// Flight-recorder event types emitted by the crossd serving layer. The
// vocabulary lives here — next to the recorder that stores it and the
// metric names in service.go — so the server, its tests, and debug
// tooling agree on one taxonomy.
const (
	// Job lifecycle: admission through terminal state.
	EvJobAdmitted  = "job_admitted"
	EvJobCoalesced = "job_coalesced"
	EvJobRejected  = "job_rejected" // Detail carries the reason (queue_full, draining, invalid)
	EvJobStarted   = "job_started"
	EvJobDone      = "job_done"
	EvJobFailed    = "job_failed"
	EvJobCancelled = "job_cancelled"
	// Result-cache activity.
	EvCacheHit   = "cache_hit"
	EvCacheMiss  = "cache_miss"
	EvCacheEvict = "cache_evict"
	// Drain transitions on shutdown.
	EvDrainBegin = "drain_begin"
	EvDrainEnd   = "drain_end"
	// One oracle firing during a job run; Detail carries the signature.
	EvOracleFailure = "oracle_failure"
	// Partition fault-plane activity: a fabric link cut or heal (Detail
	// carries the link event) and an invariant violation a scenario's
	// ground-truth check reported (Detail carries the signature).
	EvPartitionCut      = "partition_cut"
	EvPartitionHeal     = "partition_heal"
	EvInvariantViolated = "invariant_violated"
	// Cluster-tier activity. Peer-cache probes against the distributed
	// tier (Detail carries the serving node on a hit); sub-job fan-out
	// lifecycle on the coordinator (Detail carries the node); a steal
	// when an idle node takes a sub-job queued for another; a requeue
	// when a node dies mid-flight and its sub-jobs go back to the pool;
	// a node leaving the membership after failed health checks.
	EvPeerCacheHit     = "peer_cache_hit"
	EvPeerCacheMiss    = "peer_cache_miss"
	EvSubJobDispatched = "subjob_dispatched"
	EvSubJobDone       = "subjob_done"
	EvSubJobStolen     = "subjob_stolen"
	EvSubJobRequeued   = "subjob_requeued"
	EvNodeDown         = "node_down"
)

// Event is one structured flight-recorder entry. Seq and TimeNs are
// stamped by Record; everything else is caller-provided. The struct is
// all value fields so recording a disabled (nil) recorder allocates
// nothing.
type Event struct {
	Seq    uint64 `json:"seq"`
	TimeNs int64  `json:"t_ns"`
	Type   string `json:"type"`
	Job    string `json:"job,omitempty"`
	Key    string `json:"key,omitempty"`
	Trace  string `json:"trace,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// Recorder is a fixed-size ring buffer of recent structured events —
// the service's flight recorder. Recording is one short critical
// section and never allocates once the ring is built; a nil *Recorder
// is a no-op, so instrumented paths need no enabled/disabled branches.
type Recorder struct {
	mu   sync.Mutex
	ring []Event
	next uint64 // total events ever recorded; ring[next%len] is the next slot
}

// NewRecorder builds a recorder retaining the last size events
// (minimum 1).
func NewRecorder(size int) *Recorder {
	if size < 1 {
		size = 1
	}
	return &Recorder{ring: make([]Event, size)}
}

// Record stamps the event with its sequence number and wall-clock time
// and stores it, overwriting the oldest entry when the ring is full.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	now := time.Now().UnixNano()
	r.mu.Lock()
	ev.Seq = r.next
	ev.TimeNs = now
	r.ring[r.next%uint64(len(r.ring))] = ev
	r.next++
	r.mu.Unlock()
}

// Total returns how many events were ever recorded (including ones the
// ring has since overwritten).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.ring))
	start := uint64(0)
	count := r.next
	if r.next > n {
		start = r.next - n
		count = n
	}
	out := make([]Event, 0, count)
	for seq := start; seq < r.next; seq++ {
		out = append(out, r.ring[seq%n])
	}
	return out
}
