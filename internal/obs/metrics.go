package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBucketsMs are the default latency histogram bucket upper bounds,
// in milliseconds.
var DefBucketsMs = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 1000}

// Counter is a monotonically increasing metric.
type Counter struct{ v int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	atomic.AddInt64(&c.v, n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return atomic.LoadInt64(&c.v)
}

// Gauge is a metric that can go up and down.
type Gauge struct{ bits uint64 }

// Set stores the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	atomic.StoreUint64(&g.bits, math.Float64bits(v))
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(atomic.LoadUint64(&g.bits))
}

// Histogram is a fixed-bucket histogram. Buckets are upper bounds,
// inclusive (Prometheus `le` semantics); observations above the last
// bound land in the implicit +Inf bucket. Each bucket can additionally
// carry one exemplar — a trace ID attached to a recent observation —
// so a tail-latency bucket links directly to the causal span chain
// that produced it.
type Histogram struct {
	mu        sync.Mutex
	bounds    []float64
	counts    []int64    // len(bounds)+1; last is +Inf
	exemplars []Exemplar // lazily allocated, parallel to counts; zero TraceID = none
	sum       float64
	count     int64
}

// Exemplar is one trace-linked observation retained for a bucket: the
// last exemplar-carrying observation that landed in it wins.
type Exemplar struct {
	TraceID string  `json:"trace_id"`
	Value   float64 `json:"value"`
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) { h.ObserveExemplar(v, "") }

// ObserveExemplar records one observation and, when traceID is
// non-empty, stores it as the landing bucket's exemplar (replacing any
// previous one). The exemplar slice is allocated on first use, so
// exemplar-free histograms pay nothing.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, since le is inclusive
	h.counts[i]++
	h.sum += v
	h.count++
	if traceID != "" {
		if h.exemplars == nil {
			h.exemplars = make([]Exemplar, len(h.bounds)+1)
		}
		h.exemplars[i] = Exemplar{TraceID: traceID, Value: v}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns bounds, per-bucket (non-cumulative) counts, and
// per-bucket exemplars (nil when none were ever recorded).
func (h *Histogram) snapshot() (bounds []float64, counts []int64, exemplars []Exemplar, sum float64, count int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]float64(nil), h.bounds...),
		append([]int64(nil), h.counts...),
		append([]Exemplar(nil), h.exemplars...),
		h.sum, h.count
}

// Registry holds named metric families, each with labelled series.
// A nil *Registry (and the nil metrics it returns) is a no-op, so
// instrumented code needs no enabled/disabled branches.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type family struct {
	kind    string // "counter", "gauge", "histogram"
	buckets []float64
	series  map[string]any // label signature -> *Counter | *Gauge | *Histogram
	labels  map[string][]Attr
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{families: map[string]*family{}} }

// Counter returns (creating if needed) the counter series for name and
// label pairs ("key", "value", ...).
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup("counter", name, nil, labels).(*Counter)
}

// Gauge returns (creating if needed) the gauge series.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup("gauge", name, nil, labels).(*Gauge)
}

// Histogram returns (creating if needed) the histogram series. The
// bucket bounds are fixed by the family's first registration; nil
// falls back to DefBucketsMs.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup("histogram", name, buckets, labels).(*Histogram)
}

func (r *Registry) lookup(kind, name string, buckets []float64, labels []string) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		if kind == "histogram" {
			if len(buckets) == 0 {
				buckets = DefBucketsMs
			}
			buckets = append([]float64(nil), buckets...)
			sort.Float64s(buckets)
		}
		fam = &family{kind: kind, buckets: buckets, series: map[string]any{}, labels: map[string][]Attr{}}
		r.families[name] = fam
	}
	if fam.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, fam.kind, kind))
	}
	attrs := pairAttrs(labels)
	key := labelKey(attrs)
	s, ok := fam.series[key]
	if !ok {
		switch kind {
		case "counter":
			s = &Counter{}
		case "gauge":
			s = &Gauge{}
		case "histogram":
			s = &Histogram{bounds: fam.buckets, counts: make([]int64, len(fam.buckets)+1)}
		}
		fam.series[key] = s
		fam.labels[key] = attrs
	}
	return s
}

// pairAttrs converts ("k", "v", ...) pairs to sorted attributes; a
// trailing unpaired key is ignored.
func pairAttrs(labels []string) []Attr {
	out := make([]Attr, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		out = append(out, Attr{Key: labels[i], Value: labels[i+1]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// labelKey renders attributes in the Prometheus label-set syntax, used
// both as the series key and in the text exposition.
func labelKey(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = fmt.Sprintf("%s=%q", a.Key, a.Value)
	}
	return "{" + strings.Join(parts, ",") + "}"
}
