package obs

// Canonical metric names for long-running services built on the
// harness (crossd). Keeping the names here — next to the registry that
// serves them — means the server, its tests, and any future scaling
// layer (sharding, multi-backend) agree on one vocabulary.
const (
	// MetricQueueDepth is the number of jobs admitted but not yet
	// started (gauge).
	MetricQueueDepth = "crossd_queue_depth"
	// MetricInflightJobs is the number of jobs currently executing
	// (gauge).
	MetricInflightJobs = "crossd_inflight_jobs"
	// MetricCacheHitRatio is hits / (hits + misses) over the result
	// cache since process start (gauge; 0 before any lookup).
	MetricCacheHitRatio = "crossd_cache_hit_ratio"
	// MetricCacheHits / MetricCacheMisses are the raw lookup counters.
	MetricCacheHits   = "crossd_cache_hits_total"
	MetricCacheMisses = "crossd_cache_misses_total"
	// MetricJobsSubmitted counts admitted submissions, labelled by
	// kind; MetricJobsRejected counts refused ones, labelled by reason
	// ("queue_full", "draining", "invalid").
	MetricJobsSubmitted = "crossd_jobs_submitted_total"
	MetricJobsRejected  = "crossd_jobs_rejected_total"
	// MetricJobsFinished counts terminal transitions, labelled by
	// state ("done", "failed", "cancelled").
	MetricJobsFinished = "crossd_jobs_finished_total"
	// MetricJobDurationMs is the execution latency histogram, labelled
	// by kind.
	MetricJobDurationMs = "crossd_job_duration_ms"
	// MetricStageDurationMs is the per-stage latency histogram of the
	// job pipeline, labelled by stage (StageQueueWait, StageCacheProbe,
	// StageRun, StageEncode). Buckets carry exemplar trace IDs linking
	// a latency bucket to the causal span chain of the job that landed
	// in it.
	MetricStageDurationMs = "crossd_stage_duration_ms"
	// MetricPartitionFindings counts invariant violations found by
	// partition campaigns, labelled by scenario and strategy.
	MetricPartitionFindings = "partition_findings_total"
	// MetricPartitionCuts counts fabric link cuts applied by partition
	// campaigns, labelled by scenario.
	MetricPartitionCuts = "partition_cuts_total"
	// MetricAdmissionRejections counts submissions the scheduler's
	// admission layer refused before any work was done, labelled by
	// reason ("queue_full", "throttled"). A strict subset of
	// MetricJobsRejected: invalid and draining rejections are not
	// admission pressure.
	MetricAdmissionRejections = "crossd_admission_rejections_total"
	// The loadgen workload-engine metrics, labelled by phase-diagram
	// cell: client attempts (first tries plus retries), in-deadline
	// completions, admission rejections by reason, and the
	// user-perceived session latency histogram.
	MetricLoadAttempts  = "loadgen_attempts_total"
	MetricLoadGoodput   = "loadgen_goodput_total"
	MetricLoadRejected  = "loadgen_rejected_total"
	MetricLoadLatencyMs = "loadgen_latency_ms"
	// The cluster-tier metrics. Peer-cache hits/misses count the
	// scheduler's pre-execution probes of the distributed cache tier
	// (a hit skipped a full harness run); sub-job counters track the
	// coordinator's fan-out, labelled by node, with steals counted when
	// a sub-job runs on a node other than its cache-affinity owner.
	MetricPeerCacheHits   = "crossd_peer_cache_hits_total"
	MetricPeerCacheMisses = "crossd_peer_cache_misses_total"
	MetricSubJobsDispatch = "crossd_subjobs_dispatched_total"
	MetricSubJobsStolen   = "crossd_subjobs_stolen_total"
	MetricSubJobsRequeued = "crossd_subjobs_requeued_total"
)

// The stages of the crossd job pipeline, in order: admission queue
// wait, content-address cache probe, harness execution, and result
// encoding. Together the four stage histograms decompose a job's
// wall-clock latency.
const (
	StageQueueWait  = "queue_wait"
	StageCacheProbe = "cache_probe"
	StageRun        = "run"
	StageEncode     = "encode"
	// The cluster stages: the peer-cache probe a worker makes before
	// executing, and the coordinator's split → fan-out → merge pipeline
	// around the per-node sub-job runs.
	StagePeerProbe = "peer_probe"
	StageSplit     = "split"
	StageFanout    = "fanout"
	StageMerge     = "merge"
)

// SetHitRatio recomputes and stores the cache hit ratio gauge from the
// raw hit/miss counters. A nil registry is a no-op, like every other
// obs entry point.
func (r *Registry) SetHitRatio() {
	if r == nil {
		return
	}
	hits := r.Counter(MetricCacheHits).Value()
	misses := r.Counter(MetricCacheMisses).Value()
	ratio := 0.0
	if total := hits + misses; total > 0 {
		ratio = float64(hits) / float64(total)
	}
	r.Gauge(MetricCacheHitRatio).Set(ratio)
}
