package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the `le` semantics: bounds are
// inclusive upper limits, observations above the last bound land in
// +Inf only.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ms", []float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 1.0000001, 5, 9.99, 10, 11, 1e9} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParsePrometheus(&buf)
	if err != nil {
		t.Fatalf("exposition did not parse: %v\n%s", err, buf.String())
	}
	want := map[string]float64{
		`lat_ms_bucket{le="1"}`:    2, // 0.5 and exactly 1
		`lat_ms_bucket{le="5"}`:    4, // + 1.0000001 and exactly 5
		`lat_ms_bucket{le="10"}`:   6, // + 9.99 and exactly 10
		`lat_ms_bucket{le="+Inf"}`: 8,
		`lat_ms_count`:             8,
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %v, want %v", k, got[k], v)
		}
	}
	if h.Count() != 8 {
		t.Errorf("Count = %d", h.Count())
	}
}

func TestCountersGaugesLabels(t *testing.T) {
	r := NewRegistry()
	r.Counter("cases_total", "oracle", "wr").Add(3)
	r.Counter("cases_total", "oracle", "wr").Inc()
	r.Counter("cases_total", "oracle", "eh").Inc()
	r.Gauge("distinct").Set(15)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParsePrometheus(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got[`cases_total{oracle="wr"}`] != 4 || got[`cases_total{oracle="eh"}`] != 1 {
		t.Errorf("counters = %v", got)
	}
	if got[`distinct`] != 15 {
		t.Errorf("gauge = %v", got[`distinct`])
	}
	// TYPE comments present and ordered.
	text := buf.String()
	if !strings.Contains(text, "# TYPE cases_total counter") || !strings.Contains(text, "# TYPE distinct gauge") {
		t.Errorf("missing TYPE lines:\n%s", text)
	}
	if strings.Index(text, "cases_total") > strings.Index(text, "distinct") {
		t.Errorf("families not sorted:\n%s", text)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(1)
	r.Histogram("h", nil).Observe(1)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil registry wrote %q, err %v", buf.String(), err)
	}
	if err := r.WriteJSON(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil registry JSON wrote %q, err %v", buf.String(), err)
	}
}

func TestJSONExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs_total", "cmd", "crosstest").Add(2)
	r.Histogram("lat_ms", []float64{1, 10}).Observe(3)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var rows []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rows); err != nil {
		t.Fatalf("JSON export invalid: %v\n%s", err, buf.String())
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[1]["name"] != "runs_total" || rows[1]["value"].(float64) != 2 {
		t.Errorf("counter row = %v", rows[1])
	}
	hist := rows[0]
	buckets := hist["buckets"].(map[string]any)
	if buckets["10"].(float64) != 1 || buckets["+Inf"].(float64) != 1 || buckets["1"].(float64) != 0 {
		t.Errorf("histogram buckets = %v", buckets)
	}
}

func TestConcurrentMetrics(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("ops_total", "kind", "write").Inc()
				r.Histogram("lat_ms", nil, "kind", "write").Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("ops_total", "kind", "write").Value(); got != 1600 {
		t.Errorf("counter = %d", got)
	}
	if got := r.Histogram("lat_ms", nil, "kind", "write").Count(); got != 1600 {
		t.Errorf("histogram count = %d", got)
	}
}

func TestParsePrometheusRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"novalue",
		"name{unterminated 3",
		`name{k=noquote} 3`,
		"1leadingdigit 3",
		"name notafloat",
	} {
		if _, err := ParsePrometheus(strings.NewReader(bad)); err == nil {
			t.Errorf("ParsePrometheus(%q) accepted", bad)
		}
	}
}
