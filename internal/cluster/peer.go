package cluster

import (
	"context"
	"sync"
	"time"

	"repro/internal/cluster/chash"
)

// Peers is the distributed cache tier: a serve.PeerCache backed by the
// consistent-hash ring and the nodes' /api/v1/cache endpoints. Fetch
// probes the key's preference list (owner first, then ring successors
// — after a membership change the previous owner is in the new owner's
// successor set, which is what makes a resharded resubmission free);
// Offer writes a locally computed result through to the key's owner.
//
// Construct with NewPeers, then Connect once the node URLs are known —
// an unconnected tier misses every fetch and drops every offer, so the
// scheduler it is plugged into degrades to plain local execution.
type Peers struct {
	self string

	mu      sync.RWMutex
	ring    *chash.Ring
	clients map[string]*NodeClient

	// ProbeTimeout bounds each peer probe (0 = 5s). FetchLimit caps how
	// many peers one Fetch tries (0 = 3: the owner plus two successors
	// — enough to survive a membership change plus one dead node).
	ProbeTimeout time.Duration
	FetchLimit   int
}

// NewPeers builds an unconnected tier for the named node.
func NewPeers(self string) *Peers { return &Peers{self: self} }

// Connect installs the membership view: the ring over the node names
// and a client per node. Safe to call again on membership changes.
func (p *Peers) Connect(ring *chash.Ring, clients map[string]*NodeClient) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ring = ring
	p.clients = clients
}

func (p *Peers) view() (*chash.Ring, map[string]*NodeClient) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.ring, p.clients
}

func (p *Peers) timeout() time.Duration {
	if p.ProbeTimeout > 0 {
		return p.ProbeTimeout
	}
	return 5 * time.Second
}

func (p *Peers) limit() int {
	if p.FetchLimit > 0 {
		return p.FetchLimit
	}
	return 3
}

// Fetch probes the key's peer owners for a finished result.
func (p *Peers) Fetch(ctx context.Context, key string) ([]byte, bool) {
	ring, clients := p.view()
	if ring == nil {
		return nil, false
	}
	probed := 0
	for _, node := range ring.Preference(key) {
		if probed >= p.limit() {
			break
		}
		if node == p.self {
			continue // the local cache already missed
		}
		c := clients[node]
		if c == nil {
			continue
		}
		probed++
		pctx, cancel := context.WithTimeout(ctx, p.timeout())
		data, ok := c.CacheGet(pctx, key)
		cancel()
		if ok {
			return data, true
		}
	}
	return nil, false
}

// Offer writes a locally computed result through to the key's ring
// owner, so later fetches find it where the preference list starts.
// Best-effort: a dead owner just means the result stays local.
func (p *Peers) Offer(key string, data []byte) {
	ring, clients := p.view()
	if ring == nil {
		return
	}
	owner := ring.Owner(key)
	if owner == "" || owner == p.self {
		return // the local Cache.Put already stored it
	}
	c := clients[owner]
	if c == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), p.timeout())
	defer cancel()
	c.CachePut(ctx, key, data)
}
