package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/serve"
)

// NodeDownError marks a node-level failure (transport error, draining,
// or a 5xx) as opposed to a job-level one: the coordinator reacts by
// requeueing the sub-job on another node, never by failing the parent.
type NodeDownError struct {
	Node string
	Err  error
}

func (e *NodeDownError) Error() string { return fmt.Sprintf("node %s down: %v", e.Node, e.Err) }
func (e *NodeDownError) Unwrap() error { return e.Err }

// IsNodeDown reports whether err is a node-level failure.
func IsNodeDown(err error) bool {
	var nd *NodeDownError
	return errors.As(err, &nd)
}

// NodeClient speaks the crossd HTTP API to one worker node.
type NodeClient struct {
	// Name is the node's ring identity; BaseURL its API root (no
	// trailing slash).
	Name    string
	BaseURL string
	// HTTP is the transport (nil = a client with a sane timeout).
	HTTP *http.Client
	// Poll is the result-poll interval for queued jobs (0 = 25ms).
	Poll time.Duration
}

func (c *NodeClient) client() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (c *NodeClient) poll() time.Duration {
	if c.Poll > 0 {
		return c.Poll
	}
	return 25 * time.Millisecond
}

func (c *NodeClient) down(err error) error { return &NodeDownError{Node: c.Name, Err: err} }

// do runs one request, classifying transport failures as node-down.
func (c *NodeClient) do(req *http.Request) (*http.Response, error) {
	resp, err := c.client().Do(req)
	if err != nil {
		return nil, c.down(err)
	}
	return resp, nil
}

func decodeError(resp *http.Response) error {
	var body struct {
		Error string `json:"error"`
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(data, &body) == nil && body.Error != "" {
		return errors.New(body.Error)
	}
	return fmt.Errorf("http %d", resp.StatusCode)
}

// SubmitWait submits the spec and blocks until the node produces the
// result, honoring 429 Retry-After backpressure and polling queued
// jobs. Job-level failures (invalid spec, failed execution) return a
// plain error; node-level ones a NodeDownError.
func (c *NodeClient) SubmitWait(ctx context.Context, spec serve.JobSpec) (*serve.JobResult, error) {
	for {
		st, retry, err := c.submit(ctx, spec)
		if err != nil {
			return nil, err
		}
		if retry > 0 {
			if err := sleep(ctx, retry); err != nil {
				return nil, err
			}
			continue
		}
		return c.wait(ctx, st.ID)
	}
}

// submit posts the spec once. A backpressure rejection returns a
// non-zero retry hint instead of an error.
func (c *NodeClient) submit(ctx context.Context, spec serve.JobSpec) (st serve.JobStatus, retry time.Duration, err error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return st, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/api/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return st, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.do(req)
	if err != nil {
		return st, 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK, http.StatusAccepted:
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return st, 0, c.down(err)
		}
		return st, 0, nil
	case http.StatusTooManyRequests:
		retry = time.Second
		if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
			retry = time.Duration(s) * time.Second
		}
		return st, retry, nil
	case http.StatusServiceUnavailable:
		return st, 0, c.down(decodeError(resp))
	case http.StatusBadRequest:
		return st, 0, fmt.Errorf("node %s rejected spec: %w", c.Name, decodeError(resp))
	default:
		return st, 0, c.down(decodeError(resp))
	}
}

// wait polls the job's status until terminal, then fetches the result.
func (c *NodeClient) wait(ctx context.Context, id string) (*serve.JobResult, error) {
	for {
		st, err := c.status(ctx, id)
		if err != nil {
			return nil, err
		}
		switch st.State {
		case serve.StateDone:
			return c.result(ctx, id)
		case serve.StateFailed, serve.StateCancelled:
			return nil, fmt.Errorf("node %s: job %s %s: %s", c.Name, id, st.State, st.Error)
		}
		if err := sleep(ctx, c.poll()); err != nil {
			return nil, err
		}
	}
}

func (c *NodeClient) status(ctx context.Context, id string) (serve.JobStatus, error) {
	var st serve.JobStatus
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/api/v1/jobs/"+id, nil)
	if err != nil {
		return st, err
	}
	resp, err := c.do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, c.down(decodeError(resp))
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, c.down(err)
	}
	return st, nil
}

func (c *NodeClient) result(ctx context.Context, id string) (*serve.JobResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/api/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, c.down(decodeError(resp))
	}
	var res serve.JobResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return nil, c.down(err)
	}
	return &res, nil
}

// CacheGet probes the node's content-addressed cache. A miss (or any
// failure — the tier is best-effort) returns ok=false.
func (c *NodeClient) CacheGet(ctx context.Context, key string) ([]byte, bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/api/v1/cache/"+key, nil)
	if err != nil {
		return nil, false
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false
	}
	return data, true
}

// CachePut offers a finished result to the node's cache (best-effort).
func (c *NodeClient) CachePut(ctx context.Context, key string, data []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.BaseURL+"/api/v1/cache/"+key, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return decodeError(resp)
	}
	return nil
}

// MetricsText fetches the node's Prometheus exposition.
func (c *NodeClient) MetricsText(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", c.down(decodeError(resp))
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", c.down(err)
	}
	return string(data), nil
}

// Healthz reports whether the node answers its health check.
func (c *NodeClient) Healthz(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return c.down(decodeError(resp))
	}
	return nil
}

// sleep waits d or until ctx is done.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
