package cluster

import (
	"testing"

	"repro/internal/partition"
	"repro/internal/serve"
	"repro/internal/versions"
)

func TestSplitCorpusByFamily(t *testing.T) {
	subs, ok, err := Split(serve.JobSpec{Kind: serve.KindCorpus}, 3)
	if err != nil || !ok {
		t.Fatalf("split: ok=%v err=%v", ok, err)
	}
	if len(subs) != 3 {
		t.Fatalf("got %d corpus shards, want 3", len(subs))
	}
	for i, want := range []string{"ss", "sh", "hs"} {
		sub := subs[i].Spec
		if len(sub.Families) != 1 || sub.Families[0] != want || !sub.Shard {
			t.Errorf("shard %d: %+v, want single family %s with Shard", i, sub, want)
		}
	}

	// A restricted family list splits into only the requested families;
	// a single family does not split at all.
	subs, ok, err = Split(serve.JobSpec{Kind: serve.KindCorpus, Families: []string{"hs", "ss"}}, 3)
	if err != nil || !ok || len(subs) != 2 {
		t.Fatalf("restricted: ok=%v err=%v subs=%d", ok, err, len(subs))
	}
	if subs[0].Spec.Families[0] != "ss" || subs[1].Spec.Families[0] != "hs" {
		t.Errorf("restricted shards out of canonical order: %v then %v", subs[0].Spec.Families, subs[1].Spec.Families)
	}
	if _, ok, _ := Split(serve.JobSpec{Kind: serve.KindCorpus, Families: []string{"sh"}}, 3); ok {
		t.Error("single-family corpus should not split")
	}
}

func TestSplitFuzzContiguousRanges(t *testing.T) {
	spec := serve.JobSpec{Kind: serve.KindFuzz, Seed: 7, N: 10}
	subs, ok, err := Split(spec, 3)
	if err != nil || !ok {
		t.Fatalf("split: ok=%v err=%v", ok, err)
	}
	if len(subs) != 3 {
		t.Fatalf("got %d fuzz shards, want 3", len(subs))
	}
	next, total := 0, 0
	for i, sub := range subs {
		s := sub.Spec
		if !s.Shard || s.Seed != 7 {
			t.Errorf("shard %d: %+v", i, s)
		}
		if s.From != next {
			t.Errorf("shard %d starts at %d, want %d (contiguous)", i, s.From, next)
		}
		next = s.From + s.N
		total += s.N
	}
	if total != 10 {
		t.Errorf("shard sizes sum to %d, want 10", total)
	}
	// Sizes differ by at most one: 10 = 4+3+3.
	if subs[0].Spec.N != 4 || subs[1].Spec.N != 3 || subs[2].Spec.N != 3 {
		t.Errorf("uneven shard sizes: %d/%d/%d", subs[0].Spec.N, subs[1].Spec.N, subs[2].Spec.N)
	}

	// Degenerate factors do not split; an oversized factor clamps.
	if _, ok, _ := Split(spec, 1); ok {
		t.Error("factor 1 should not split")
	}
	subs, ok, _ = Split(serve.JobSpec{Kind: serve.KindFuzz, Seed: 7, N: 2}, 8)
	if !ok || len(subs) != 2 {
		t.Errorf("factor clamps to N: got %d shards", len(subs))
	}
}

func TestSplitSkewPerPair(t *testing.T) {
	subs, ok, err := Split(serve.JobSpec{Kind: serve.KindSkew}, 3)
	if err != nil || !ok {
		t.Fatalf("split: ok=%v err=%v", ok, err)
	}
	defaults := versions.DefaultPairs()
	if len(subs) != len(defaults) {
		t.Fatalf("got %d skew shards, want %d (the default matrix)", len(subs), len(defaults))
	}
	for i, sub := range subs {
		s := sub.Spec
		if len(s.Pairs) != 1 || s.Pairs[0] != defaults[i].String() {
			t.Errorf("shard %d pairs = %v, want [%s]", i, s.Pairs, defaults[i])
		}
		// Skew shards are plain specs — a user submitting the same
		// single pair directly must land on the same cache key.
		if s.Shard {
			t.Errorf("shard %d carries the Shard marker; skew shards are plain", i)
		}
		plain := serve.JobSpec{Kind: serve.KindSkew, Pairs: []string{defaults[i].String()}}
		want, err := plain.CacheKey()
		if err != nil {
			t.Fatal(err)
		}
		if sub.Key != want {
			t.Errorf("shard %d key differs from the equivalent direct submission", i)
		}
	}
}

func TestSplitPartitionPerScenario(t *testing.T) {
	subs, ok, err := Split(serve.JobSpec{Kind: serve.KindPartition, Seed: 3}, 3)
	if err != nil || !ok {
		t.Fatalf("split: ok=%v err=%v", ok, err)
	}
	all := partition.Scenarios()
	if len(subs) != len(all) {
		t.Fatalf("got %d partition shards, want %d (the registry)", len(subs), len(all))
	}
	for i, sub := range subs {
		s := sub.Spec
		if len(s.Scenarios) != 1 || s.Scenarios[0] != all[i].Name || s.Shard {
			t.Errorf("shard %d: %+v, want plain single-scenario %s", i, s, all[i].Name)
		}
	}

	// The fixed strategy carries an explicit cut schedule validated
	// against the scenario union — it must not split.
	fixed := serve.JobSpec{
		Kind:     serve.KindPartition,
		Strategy: string(partition.StrategyFixed),
		Schedule: []partition.Cut{{From: "nn", To: "dn1", AtMs: 100, HealAtMs: 400}},
	}
	if _, ok, err := Split(fixed, 3); err != nil || ok {
		t.Errorf("fixed-strategy partition split: ok=%v err=%v, want no split", ok, err)
	}
}

func TestSplitSweepPassthrough(t *testing.T) {
	if _, ok, err := Split(serve.JobSpec{Kind: serve.KindSweep}, 3); err != nil || ok {
		t.Errorf("sweep split: ok=%v err=%v, want no split", ok, err)
	}
}

func TestSplitRejectsInvalidSpec(t *testing.T) {
	if _, _, err := Split(serve.JobSpec{Kind: "bogus"}, 3); err == nil {
		t.Error("invalid spec must not split cleanly")
	}
}
