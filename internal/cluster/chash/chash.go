// Package chash is the consistent-hash ring the cluster's distributed
// cache tier is built on: cache keys (the serve content addresses) map
// to nodes so that membership changes move only the keys they must —
// on a node join or leave, at most ~1/N of the keyspace remaps, and
// every unmoved key keeps its owner. That stability is what lets a
// resharded resubmission find its sub-results on peers instead of
// re-executing them.
package chash

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultReplicas is the virtual-node count per member: enough to keep
// the load spread within a small factor of even for single-digit
// clusters without making ring rebuilds expensive.
const DefaultReplicas = 128

type point struct {
	hash uint64
	node string
}

// Ring is an immutable consistent-hash ring over a set of node names.
// Build one with New; membership changes build a new ring (they are
// rare — a rebuild is microseconds — and immutability makes the ring
// safe to share without locks).
type Ring struct {
	points []point
	nodes  []string
}

// New builds a ring with DefaultReplicas virtual nodes per member.
// Duplicate names collapse; order does not matter (two rings over the
// same member set are identical).
func New(nodes ...string) *Ring {
	return NewReplicas(DefaultReplicas, nodes...)
}

// NewReplicas builds a ring with an explicit virtual-node count.
func NewReplicas(replicas int, nodes ...string) *Ring {
	if replicas < 1 {
		replicas = 1
	}
	seen := map[string]bool{}
	r := &Ring{}
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", n, v)), node: n})
		}
	}
	sort.Strings(r.nodes)
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.node < b.node // total order even on (vanishingly rare) hash ties
	})
	return r
}

// Nodes returns the member names, sorted.
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.nodes...)
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Owner returns the node owning the key: the first virtual node at or
// after the key's hash, wrapping. Empty string on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(key)].node
}

// Preference returns all members in the key's ring order: the owner
// first, then each distinct successor. A reader probing peers in this
// order finds a key that moved in a membership change at its previous
// owner — the new owner's successor set contains the old owner —
// which is the property peer-fetch-before-recompute relies on.
func (r *Ring) Preference(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.nodes))
	seen := map[string]bool{}
	for i, n := r.search(key), 0; n < len(r.points); n++ {
		p := r.points[(i+n)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		out = append(out, p.node)
		if len(out) == len(r.nodes) {
			break
		}
	}
	return out
}

// search returns the index of the first point at or after the key's
// hash (wrapping to 0).
func (r *Ring) search(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// hash64 is the ring's point hash: the first 8 bytes of sha256, the
// same construction the cache keys themselves use — uniform, stable
// across processes and platforms, and with no seed to disagree on.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
