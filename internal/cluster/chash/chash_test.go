package chash

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("key-%06d", i)
	}
	return out
}

func nodeNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("node-%c", 'a'+i)
	}
	return out
}

// The ring must spread keys within a reasonable factor of even for the
// cluster sizes crossd actually runs (2–5 nodes): no node under half
// or over twice its fair share across a large key population.
func TestDistributionBounds(t *testing.T) {
	const total = 20000
	for n := 2; n <= 5; n++ {
		r := New(nodeNames(n)...)
		counts := map[string]int{}
		for _, k := range keys(total) {
			counts[r.Owner(k)]++
		}
		if len(counts) != n {
			t.Fatalf("%d nodes: only %d received keys", n, len(counts))
		}
		fair := total / n
		for node, c := range counts {
			if c < fair/2 || c > fair*2 {
				t.Errorf("%d nodes: %s owns %d keys, fair share %d (outside [%d,%d])",
					n, node, c, fair, fair/2, fair*2)
			}
		}
	}
}

// Consistency: growing or shrinking the membership by one node remaps
// at most ~1/N of the keyspace (we allow 2/N for virtual-node
// variance), and every unmoved key keeps its exact owner.
func TestRemapFractionOnMembershipChange(t *testing.T) {
	const total = 20000
	ks := keys(total)
	for n := 2; n <= 5; n++ {
		names := nodeNames(n)
		before := New(names...)
		grown := New(append(append([]string{}, names...), "node-z")...)
		shrunk := New(names[:n-1]...)

		moved := 0
		for _, k := range ks {
			if before.Owner(k) != grown.Owner(k) {
				moved++
			}
		}
		if limit := 2 * total / (n + 1); moved > limit {
			t.Errorf("join at n=%d: %d/%d keys moved, limit %d", n, moved, total, limit)
		}
		for _, k := range ks {
			if g := grown.Owner(k); g != "node-z" && g != before.Owner(k) {
				t.Fatalf("join at n=%d: key %s moved between old nodes (%s -> %s)", n, k, before.Owner(k), g)
			}
		}

		moved = 0
		lost := names[n-1]
		for _, k := range ks {
			b := before.Owner(k)
			s := shrunk.Owner(k)
			if b != s {
				moved++
				if b != lost {
					t.Fatalf("leave at n=%d: key %s moved off a surviving node (%s -> %s)", n, k, b, s)
				}
			}
		}
		if limit := 2 * total / n; moved > limit {
			t.Errorf("leave at n=%d: %d/%d keys moved, limit %d", n, moved, total, limit)
		}
	}
}

// The reshard guarantee: after a join, a key's previous owner appears
// in its new preference list — so a peer fetch walking the list finds
// results computed before the membership change.
func TestPreferenceCoversPreviousOwner(t *testing.T) {
	before := New(nodeNames(3)...)
	after := New(append(nodeNames(3), "node-z")...)
	for _, k := range keys(2000) {
		old := before.Owner(k)
		found := false
		for _, n := range after.Preference(k) {
			if n == old {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("key %s: previous owner %s absent from new preference %v", k, old, after.Preference(k))
		}
	}
}

// Preference lists every member exactly once, starting with the owner.
func TestPreferenceShape(t *testing.T) {
	r := New(nodeNames(4)...)
	for _, k := range keys(500) {
		pref := r.Preference(k)
		if len(pref) != 4 {
			t.Fatalf("key %s: preference %v does not cover the membership", k, pref)
		}
		if pref[0] != r.Owner(k) {
			t.Fatalf("key %s: preference starts at %s, owner is %s", k, pref[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, n := range pref {
			if seen[n] {
				t.Fatalf("key %s: node %s repeated in preference %v", k, n, pref)
			}
			seen[n] = true
		}
	}
}

// Construction is order- and duplicate-insensitive, and the ring is a
// pure function of the member set.
func TestRingCanonical(t *testing.T) {
	a := New("x", "y", "z")
	b := New("z", "x", "y", "x", "")
	if got, want := fmt.Sprint(a.Nodes()), fmt.Sprint(b.Nodes()); got != want {
		t.Fatalf("member sets differ: %s vs %s", got, want)
	}
	for _, k := range keys(1000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %s: owner differs across construction orders", k)
		}
	}
	if a.Len() != 3 {
		t.Errorf("Len = %d, want 3", a.Len())
	}
}

// Degenerate rings behave: empty returns zero values, single-node owns
// everything.
func TestDegenerateRings(t *testing.T) {
	empty := New()
	if empty.Owner("k") != "" || empty.Preference("k") != nil || empty.Len() != 0 {
		t.Error("empty ring should own nothing")
	}
	solo := New("only")
	for _, k := range keys(100) {
		if solo.Owner(k) != "only" {
			t.Fatal("single-node ring must own every key")
		}
	}
}
