package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// MetricsHandler serves the cluster-wide metrics view: every worker's
// /metrics exposition plus the coordinator's own registry, parsed and
// summed series-by-series, with a per-node liveness marker. Mount it as
// serve.ServerOptions.Cluster on the coordinator node.
type MetricsHandler struct {
	// Nodes are the workers to scrape.
	Nodes map[string]*NodeClient
	// Self, when non-nil, contributes the coordinator's own registry
	// (fan-out counters, stage histograms) under SelfName.
	Self     *obs.Registry
	SelfName string
	// ScrapeTimeout bounds each node scrape (0 = 5s).
	ScrapeTimeout time.Duration
}

func (h *MetricsHandler) timeout() time.Duration {
	if h.ScrapeTimeout > 0 {
		return h.ScrapeTimeout
	}
	return 5 * time.Second
}

func (h *MetricsHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sums := map[string]float64{}
	up := map[string]bool{}

	names := make([]string, 0, len(h.Nodes))
	for name := range h.Nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ctx, cancel := context.WithTimeout(r.Context(), h.timeout())
		text, err := h.Nodes[name].MetricsText(ctx)
		cancel()
		if err != nil {
			up[name] = false
			continue
		}
		up[name] = true
		series, err := obs.ParsePrometheus(strings.NewReader(text))
		if err != nil {
			continue // a malformed exposition counts as up but contributes nothing
		}
		for k, v := range series {
			sums[k] += v
		}
	}
	if h.Self != nil {
		var b strings.Builder
		h.Self.WritePrometheus(&b)
		if series, err := obs.ParsePrometheus(strings.NewReader(b.String())); err == nil {
			for k, v := range series {
				sums[k] += v
			}
		}
		selfName := h.SelfName
		if selfName == "" {
			selfName = "coordinator"
		}
		up[selfName] = true
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	keys := make([]string, 0, len(sums))
	for k := range sums {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s %v\n", k, sums[k])
	}
	nodes := make([]string, 0, len(up))
	for n := range up {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		v := 0
		if up[n] {
			v = 1
		}
		fmt.Fprintf(w, "crossd_node_up{node=%q} %d\n", n, v)
	}
}
