package cluster

import (
	"fmt"
	"strings"
)

// ParseNodes parses a "name=url[,name=url...]" membership flag into
// node clients — the spelling both the coordinator's -cluster flag and
// a worker's -peers flag use, so one membership string configures the
// whole cluster.
func ParseNodes(spec string) (map[string]*NodeClient, error) {
	nodes := map[string]*NodeClient{}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, url, ok := strings.Cut(entry, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("cluster: node entry %q is not name=url", entry)
		}
		if _, dup := nodes[name]; dup {
			return nil, fmt.Errorf("cluster: duplicate node name %q", name)
		}
		nodes[name] = &NodeClient{Name: name, BaseURL: strings.TrimRight(url, "/")}
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: empty node list")
	}
	return nodes, nil
}
