package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster/chash"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/versions"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata/")

// testNode is one in-process crossd worker: a real scheduler over the
// real executor, served over HTTP, with a peer-cache tier attached.
type testNode struct {
	name     string
	exec     *serve.Executor
	sched    *serve.Scheduler
	peers    *Peers
	metrics  *obs.Registry
	recorder *obs.Recorder
	srv      *httptest.Server
}

// newTestNode builds a worker. runner overrides the executor used by
// the scheduler (for fault injection); the returned node's exec counter
// still observes real executions when the override wraps it.
func newTestNode(t *testing.T, name string, runner serve.Runner) *testNode {
	t.Helper()
	cache, err := serve.NewCache(64, "")
	if err != nil {
		t.Fatal(err)
	}
	n := &testNode{
		name:     name,
		exec:     &serve.Executor{},
		metrics:  obs.NewRegistry(),
		recorder: obs.NewRecorder(512),
		peers:    NewPeers(name),
	}
	if runner == nil {
		runner = n.exec
	}
	n.sched = serve.NewScheduler(serve.SchedulerOptions{
		Workers:    2,
		QueueDepth: 32,
		Cache:      cache,
		Executor:   runner,
		Metrics:    n.metrics,
		Recorder:   n.recorder,
		Peers:      n.peers,
	})
	n.srv = httptest.NewServer(serve.NewServer(n.sched, serve.ServerOptions{Metrics: n.metrics, Recorder: n.recorder}))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		n.sched.Drain(ctx)
		n.srv.Close()
	})
	return n
}

// connectTier wires the nodes into one cache tier: every node gets the
// same ring and client map, so peer fetches resolve across the whole
// membership. Returns the client map for a coordinator to use.
func connectTier(nodes ...*testNode) map[string]*NodeClient {
	clients := map[string]*NodeClient{}
	names := make([]string, 0, len(nodes))
	for _, n := range nodes {
		clients[n.name] = &NodeClient{Name: n.name, BaseURL: n.srv.URL, Poll: 2 * time.Millisecond}
		names = append(names, n.name)
	}
	ring := chash.New(names...)
	for _, n := range nodes {
		n.peers.Connect(ring, clients)
	}
	return clients
}

// frontend is a coordinator crossd: the Coordinator as the Runner
// behind an ordinary scheduler + server, with /cluster mounted.
type frontend struct {
	coord    *Coordinator
	sched    *serve.Scheduler
	metrics  *obs.Registry
	recorder *obs.Recorder
	srv      *httptest.Server
	client   *NodeClient
}

func newFrontend(t *testing.T, clients map[string]*NodeClient, split int) *frontend {
	t.Helper()
	metrics := obs.NewRegistry()
	recorder := obs.NewRecorder(512)
	coord, err := New(Options{Nodes: clients, SplitFactor: split, Metrics: metrics, Recorder: recorder})
	if err != nil {
		t.Fatal(err)
	}
	cache, err := serve.NewCache(64, "")
	if err != nil {
		t.Fatal(err)
	}
	f := &frontend{coord: coord, metrics: metrics, recorder: recorder}
	f.sched = serve.NewScheduler(serve.SchedulerOptions{
		Workers:    2,
		QueueDepth: 32,
		Cache:      cache,
		Executor:   coord,
		Metrics:    metrics,
		Recorder:   recorder,
	})
	f.srv = httptest.NewServer(serve.NewServer(f.sched, serve.ServerOptions{
		Metrics:  metrics,
		Recorder: recorder,
		Cluster:  &MetricsHandler{Nodes: clients, Self: metrics, SelfName: "coordinator"},
	}))
	f.client = &NodeClient{Name: "coordinator", BaseURL: f.srv.URL, Poll: 2 * time.Millisecond}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		f.sched.Drain(ctx)
		f.srv.Close()
	})
	return f
}

// newCluster spins up n workers plus a coordinator frontend.
func newCluster(t *testing.T, n, split int) ([]*testNode, *frontend) {
	t.Helper()
	nodes := make([]*testNode, 0, n)
	for i := 0; i < n; i++ {
		nodes = append(nodes, newTestNode(t, fmt.Sprintf("node-%c", 'a'+i), nil))
	}
	clients := connectTier(nodes...)
	return nodes, newFrontend(t, clients, split)
}

// resultBytes renders a JobResult exactly as the scheduler's cache
// stores it, so cluster and single-node results byte-compare.
func resultBytes(t *testing.T, res *serve.JobResult) []byte {
	t.Helper()
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

// runDirect executes the spec unsplit on a plain single-process
// scheduler and returns the stored result bytes.
func runDirect(t *testing.T, spec serve.JobSpec) []byte {
	t.Helper()
	cache, err := serve.NewCache(16, "")
	if err != nil {
		t.Fatal(err)
	}
	sched := serve.NewScheduler(serve.SchedulerOptions{Workers: 2, QueueDepth: 8, Cache: cache, Executor: &serve.Executor{}})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		sched.Drain(ctx)
	}()
	job, err := sched.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.Done():
	case <-time.After(120 * time.Second):
		t.Fatal("direct run did not finish")
	}
	if st := job.Status(); st.State != serve.StateDone {
		t.Fatalf("direct run: %+v", st)
	}
	data, _ := job.Result()
	return data
}

// runCluster submits the spec through the coordinator frontend over
// HTTP and returns the merged result re-rendered in cache encoding.
func runCluster(t *testing.T, f *frontend, spec serve.JobSpec) []byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	res, err := f.client.SubmitWait(ctx, spec)
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	return resultBytes(t, res)
}

func sumExecutions(nodes []*testNode) int64 {
	var n int64
	for _, node := range nodes {
		n += node.exec.Executions()
	}
	return n
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("bytes diverge from %s (regenerate with -update if intentional)", path)
	}
}

// The headline determinism contract for fuzz: a campaign split across
// 3 nodes merges byte-identically — the full stored JobResult,
// rendered report and hash included — to the same campaign on a single
// unsplit node.
func TestClusterFuzzByteIdenticalToSingleNode(t *testing.T) {
	spec := serve.JobSpec{Kind: serve.KindFuzz, Seed: 5, N: 60, Parallel: 2}
	direct := runDirect(t, spec)

	nodes, front := newCluster(t, 3, 6)
	got := runCluster(t, front, spec)
	if !bytes.Equal(got, direct) {
		t.Errorf("3-node merged fuzz result differs from single-node run:\n got: %s\nwant: %s", got, direct)
	}
	if n := sumExecutions(nodes); n != 6 {
		t.Errorf("campaign executed %d sub-jobs, want 6", n)
	}

	// Every sub-job ran remotely; the coordinator's own registry only
	// saw fan-out, never a harness execution.
	var res serve.JobResult
	if err := json.Unmarshal(got, &res); err != nil {
		t.Fatal(err)
	}
	if res.Fuzz == nil || res.Fuzz.Failures == 0 {
		t.Errorf("merged campaign found no failures: %+v", res.Fuzz)
	}
	if res.Merge != nil {
		t.Error("merged parent result leaks shard MergeMeta")
	}
}

// Satellite: the golden Figure-6 corpus through 1-node and 3-node
// clusters. Both merge to the same bytes as an unsplit single-node
// run, and the merged ReportJSON + report hash are pinned as goldens.
func TestClusterCorpusGolden(t *testing.T) {
	spec := serve.JobSpec{Kind: serve.KindCorpus, Parallel: 4}
	direct := runDirect(t, spec)

	_, front1 := newCluster(t, 1, 0)
	one := runCluster(t, front1, spec)
	nodes3, front3 := newCluster(t, 3, 0)
	three := runCluster(t, front3, spec)

	if !bytes.Equal(one, direct) {
		t.Error("1-node cluster corpus result differs from unsplit single-node run")
	}
	if !bytes.Equal(three, direct) {
		t.Error("3-node cluster corpus result differs from unsplit single-node run")
	}
	if n := sumExecutions(nodes3); n != 3 {
		t.Errorf("3-node corpus executed %d family shards, want 3", n)
	}

	var res serve.JobResult
	if err := json.Unmarshal(three, &res); err != nil {
		t.Fatal(err)
	}
	rj, err := json.MarshalIndent(res.Report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "cluster_corpus_report.json", append(rj, '\n'))
	checkGolden(t, "cluster_corpus_sha.txt", []byte(res.ReportSHA+"\n"))
	if res.ReportSHA != core.HashBytes([]byte(res.Rendered)) {
		t.Error("merged report hash does not cover the rendered bytes")
	}
}

// Satellite: the 5-pair skew matrix through 1-node vs 3-node clusters,
// pinned against the unsplit run and the goldens.
func TestClusterSkewGolden(t *testing.T) {
	var pairs []string
	for _, p := range versions.DefaultPairs() {
		pairs = append(pairs, p.String())
	}
	if len(pairs) != 5 {
		t.Fatalf("default matrix has %d pairs, want 5", len(pairs))
	}
	// CHAR inputs keep each cell cheap while still crossing the
	// SPARK-33480 skew boundary on the upgrade pairs.
	spec := serve.JobSpec{Kind: serve.KindSkew, InputPrefix: "char", Pairs: pairs, Parallel: 4}
	direct := runDirect(t, spec)

	_, front1 := newCluster(t, 1, 0)
	one := runCluster(t, front1, spec)
	nodes3, front3 := newCluster(t, 3, 0)
	three := runCluster(t, front3, spec)

	if !bytes.Equal(one, direct) {
		t.Error("1-node cluster skew matrix differs from unsplit single-node run")
	}
	if !bytes.Equal(three, direct) {
		t.Error("3-node cluster skew matrix differs from unsplit single-node run")
	}
	if n := sumExecutions(nodes3); n != 5 {
		t.Errorf("3-node skew executed %d pair cells, want 5", n)
	}

	var res serve.JobResult
	if err := json.Unmarshal(three, &res); err != nil {
		t.Fatal(err)
	}
	sj, err := json.MarshalIndent(res.Skew, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "cluster_skew.json", append(sj, '\n'))
	checkGolden(t, "cluster_skew_sha.txt", []byte(res.ReportSHA+"\n"))
}

// Partition campaigns split per scenario and merge byte-identically.
func TestClusterPartitionByteIdentical(t *testing.T) {
	spec := serve.JobSpec{Kind: serve.KindPartition, Seed: 3, Trials: 5}
	direct := runDirect(t, spec)
	nodes, front := newCluster(t, 3, 0)
	got := runCluster(t, front, spec)
	if !bytes.Equal(got, direct) {
		t.Errorf("3-node merged partition result differs from single-node run:\n got: %s\nwant: %s", got, direct)
	}
	if n := sumExecutions(nodes); n == 0 {
		t.Error("no scenario sub-jobs executed")
	}
}

// Sweeps do not split; the coordinator runs them whole on one node and
// passes the result through untouched.
func TestClusterSweepPassthrough(t *testing.T) {
	spec := serve.JobSpec{Kind: serve.KindSweep, InputPrefix: "char", Parallel: 4}
	direct := runDirect(t, spec)
	nodes, front := newCluster(t, 3, 0)
	got := runCluster(t, front, spec)
	if !bytes.Equal(got, direct) {
		t.Errorf("sweep passthrough differs from single-node run:\n got: %s\nwant: %s", got, direct)
	}
	if n := sumExecutions(nodes); n != 1 {
		t.Errorf("sweep executed %d times across the cluster, want 1", n)
	}
}

// The reshard headline: run a campaign on 3 nodes, grow the cluster to
// 4, and resubmit through a fresh coordinator. The consistent-hash
// cache tier serves every sub-job from local or peer caches — zero
// re-execution — and the merged bytes are identical.
func TestClusterReshardZeroReExecution(t *testing.T) {
	spec := serve.JobSpec{Kind: serve.KindFuzz, Seed: 11, N: 90, Parallel: 2}
	const split = 6

	nodes := []*testNode{
		newTestNode(t, "node-a", nil),
		newTestNode(t, "node-b", nil),
		newTestNode(t, "node-c", nil),
	}
	clients3 := connectTier(nodes...)
	front3 := newFrontend(t, clients3, split)

	start := time.Now()
	first := runCluster(t, front3, spec)
	coldElapsed := time.Since(start)
	execAfterFirst := sumExecutions(nodes)
	if execAfterFirst != split {
		t.Fatalf("first campaign executed %d sub-jobs, want %d", execAfterFirst, split)
	}

	// Grow the cluster: a fresh node joins, every peer tier reconnects
	// to the 4-node ring, and a fresh coordinator (empty parent cache)
	// fronts the new membership.
	nodeD := newTestNode(t, "node-d", nil)
	nodes = append(nodes, nodeD)
	clients4 := connectTier(nodes...)
	front4 := newFrontend(t, clients4, split)

	// How many sub-jobs changed owner tells us how many peer fetches to
	// expect; the ring bounds it, and none may re-execute either way.
	subs, ok, err := Split(spec, split)
	if err != nil || !ok {
		t.Fatalf("split: ok=%v err=%v", ok, err)
	}
	moved := 0
	for _, sub := range subs {
		if front3.coord.Ring().Owner(sub.Key) != front4.coord.Ring().Owner(sub.Key) {
			moved++
		}
	}

	start = time.Now()
	second := runCluster(t, front4, spec)
	warmElapsed := time.Since(start)

	if !bytes.Equal(first, second) {
		t.Error("resharded resubmission produced different bytes")
	}
	if n := sumExecutions(nodes); n != execAfterFirst {
		t.Errorf("reshard re-executed: %d executions after resubmission, want %d", n, execAfterFirst)
	}
	var peerHits int64
	for _, n := range nodes {
		peerHits += n.metrics.Counter(obs.MetricPeerCacheHits).Value()
	}
	if moved > 0 && peerHits == 0 {
		t.Errorf("%d sub-jobs changed owner but no peer-cache hit was recorded", moved)
	}
	t.Logf("reshard: cold %v, warm %v (%d/%d sub-jobs moved, %v peer hits, 0 re-executions)",
		coldElapsed, warmElapsed, moved, split, peerHits)
}

// TestClusterWallClockTable measures the same fuzz campaign on 1-, 2-
// and 3-node clusters for the EXPERIMENTS.md scaling table. Timing is
// machine-dependent, so it only logs; run it explicitly with
// CROSSD_WALLCLOCK=1 go test ./internal/cluster -run WallClock -v
func TestClusterWallClockTable(t *testing.T) {
	if os.Getenv("CROSSD_WALLCLOCK") == "" {
		t.Skip("set CROSSD_WALLCLOCK=1 to measure the scaling table")
	}
	spec := serve.JobSpec{Kind: serve.KindFuzz, Seed: 42, N: 6000, Parallel: 2}
	var base time.Duration
	for _, n := range []int{1, 2, 3} {
		_, front := newCluster(t, n, 6)
		start := time.Now()
		runCluster(t, front, spec)
		elapsed := time.Since(start)
		if n == 1 {
			base = elapsed
		}
		t.Logf("fuzz seed=%d n=%d on %d node(s): %v (%.2fx)", spec.Seed, spec.N, n, elapsed.Round(time.Millisecond), float64(base)/float64(elapsed))
	}
}

// gatedRunner blocks every execution until its gate opens, so a test
// can kill the node while a sub-job is provably in flight.
type gatedRunner struct {
	inner   serve.Runner
	entered chan struct{}
	gate    chan struct{}
}

func (g *gatedRunner) Execute(ctx context.Context, spec serve.JobSpec, onFailure func(core.Failure)) (*serve.JobResult, error) {
	select {
	case g.entered <- struct{}{}:
	default:
	}
	select {
	case <-g.gate:
		return g.inner.Execute(ctx, spec, onFailure)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// The fault satellite: kill a worker mid-campaign. The coordinator
// marks it down, requeues its claimed and queued sub-jobs onto the
// survivors, and the merged report is byte-identical; nothing already
// finished executes twice.
func TestClusterWorkerDeathResteal(t *testing.T) {
	spec := serve.JobSpec{Kind: serve.KindFuzz, Seed: 5, N: 60, Parallel: 2}
	direct := runDirect(t, spec)

	a := newTestNode(t, "node-a", nil)
	b := newTestNode(t, "node-b", nil)
	cExec := &serve.Executor{}
	gate := &gatedRunner{inner: cExec, entered: make(chan struct{}, 16), gate: make(chan struct{})}
	defer close(gate.gate) // unblock node-c's scheduler for a clean drain
	c := newTestNode(t, "node-c", gate)
	c.exec = cExec
	clients := connectTier(a, b, c)
	front := newFrontend(t, clients, 6)

	type outcome struct {
		res *serve.JobResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		res, err := front.client.SubmitWait(ctx, spec)
		done <- outcome{res, err}
	}()

	// Wait until node-c has a sub-job in flight, then kill it.
	select {
	case <-gate.entered:
	case <-time.After(60 * time.Second):
		t.Fatal("node-c never received a sub-job")
	}
	c.srv.CloseClientConnections()
	c.srv.Close()

	out := <-done
	if out.err != nil {
		t.Fatalf("campaign failed after worker death: %v", out.err)
	}
	if got := resultBytes(t, out.res); !bytes.Equal(got, direct) {
		t.Error("post-failover merged result differs from single-node run")
	}
	// The dead node executed nothing (its one claimed sub-job was still
	// gated), and the survivors ran each sub-job exactly once — the
	// requeued one included, with no double execution of anything the
	// cache already held.
	if n := cExec.Executions(); n != 0 {
		t.Errorf("dead node executed %d sub-jobs", n)
	}
	if n := a.exec.Executions() + b.exec.Executions(); n != 6 {
		t.Errorf("survivors executed %d sub-jobs, want 6 (each exactly once)", n)
	}

	var sawDown, sawRequeue bool
	for _, ev := range front.recorder.Events() {
		switch ev.Type {
		case obs.EvNodeDown:
			sawDown = true
		case obs.EvSubJobRequeued:
			sawRequeue = true
		}
	}
	if !sawDown || !sawRequeue {
		t.Errorf("flight recorder missing failover events: node_down=%v requeued=%v", sawDown, sawRequeue)
	}
}

// /cluster on the coordinator aggregates every node's /metrics plus
// the coordinator's own registry, with per-node liveness markers.
func TestClusterMetricsAggregation(t *testing.T) {
	spec := serve.JobSpec{Kind: serve.KindFuzz, Seed: 5, N: 60, Parallel: 2}
	nodes, front := newCluster(t, 3, 6)
	runCluster(t, front, spec)

	resp, err := http.Get(front.srv.URL + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/cluster: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	for _, n := range nodes {
		if !strings.Contains(text, fmt.Sprintf("crossd_node_up{node=%q} 1", n.name)) {
			t.Errorf("/cluster missing liveness for %s", n.name)
		}
	}
	if !strings.Contains(text, `crossd_node_up{node="coordinator"} 1`) {
		t.Error("/cluster missing the coordinator's own liveness")
	}

	series, err := obs.ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("aggregated output is not parseable: %v", err)
	}
	if got := series[`crossd_jobs_submitted_total{kind="fuzz"}`]; got < 6 {
		t.Errorf("aggregated fuzz submissions = %v, want >= 6 (one per sub-job)", got)
	}
	if got := series[`crossd_subjobs_dispatched_total{node="node-a"}`] +
		series[`crossd_subjobs_dispatched_total{node="node-b"}`] +
		series[`crossd_subjobs_dispatched_total{node="node-c"}`]; got != 6 {
		t.Errorf("dispatched sub-jobs across nodes = %v, want 6", got)
	}
}
