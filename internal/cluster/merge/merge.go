// Package merge reassembles a split job's sub-results into the parent
// result, byte-identical to what a single node running the whole job
// produces. The contract per kind:
//
//   - corpus: sub-reports (one per plan family) merge at the
//     ReportJSON level; failure ranks carried in MergeMeta decide which
//     shard's example represents each merged cluster, and the rendered
//     text is rebuilt with core.RenderReportJSON.
//   - fuzz: sub-campaigns (contiguous seed ranges) rebuild a
//     fuzzgen.Result — sums, rank-merged clusters, and the minimum-rank
//     shard's reproducers — and the real Render produces the text.
//   - skew: one cell per pair, concatenated in parent pair order into
//     a core.SkewMatrix.
//   - partition: one scenario per sub, concatenated in expanded
//     registry order into a partition.Result.
//
// Everything here is deterministic: map iteration is always sorted
// before it can reach rendered output, and the merged result depends
// only on the multiset of sub-results, not their arrival order.
package merge

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/fuzzgen"
	"repro/internal/inject"
	"repro/internal/partition"
	"repro/internal/serve"
	"repro/internal/versions"
)

// finish stamps the fields every merged result shares: the parent
// content address, the rendered report's hash, and the spec echo.
func finish(spec serve.JobSpec, res *serve.JobResult) (*serve.JobResult, error) {
	key, err := spec.CacheKey()
	if err != nil {
		return nil, err
	}
	res.Key = key
	res.Kind = spec.Kind
	res.Spec = spec
	res.Conf = spec.Conf
	res.ReportSHA = core.HashBytes([]byte(res.Rendered))
	return res, nil
}

// subRank returns the merge rank a sub-result recorded for a cluster
// signature ("" when absent — absent ranks lose every comparison).
func subRank(sub *serve.JobResult, sig string) string {
	if sub.Merge == nil {
		return ""
	}
	return sub.Merge.Ranks[sig]
}

// better reports whether rank a beats rank b as the representative
// (first-in-emission-order) failure: a non-empty rank beats an empty
// one, otherwise plain string order — ranks are built so string order
// is emission order.
func better(a, b string) bool {
	if a == "" {
		return false
	}
	if b == "" {
		return true
	}
	return a < b
}

// Corpus merges family-shard corpus results into the parent report.
func Corpus(spec serve.JobSpec, subs []*serve.JobResult) (*serve.JobResult, error) {
	merged := core.ReportJSON{
		OracleFailures: map[string]int{},
		Categories:     map[string]int{},
	}
	type acc struct {
		fj   core.FoundJSON
		rank string
	}
	found := map[string]*acc{}
	for _, sub := range subs {
		if sub == nil || sub.Report == nil {
			return nil, fmt.Errorf("merge: corpus sub-result missing report")
		}
		for k, v := range sub.Report.OracleFailures {
			if k == "skew" && v == 0 {
				continue // the conditional key: never emitted at zero
			}
			merged.OracleFailures[k] += v
		}
		for _, fj := range sub.Report.Found {
			rank := subRank(sub, fj.Signature)
			a, ok := found[fj.Signature]
			if !ok {
				cp := fj
				cp.Oracles = map[string]int{}
				for o, n := range fj.Oracles {
					cp.Oracles[o] = n
				}
				found[fj.Signature] = &acc{fj: cp, rank: rank}
				continue
			}
			a.fj.Failures += fj.Failures
			for o, n := range fj.Oracles {
				a.fj.Oracles[o] += n
			}
			if better(rank, a.rank) {
				a.fj.Example = fj.Example
				a.rank = rank
			}
		}
	}
	// Always-present oracle keys, even at zero — exactly what
	// Report.JSON emits.
	for _, o := range []string{"wr", "eh", "difft"} {
		merged.OracleFailures[o] += 0
	}
	sigs := make([]string, 0, len(found))
	for s := range found {
		sigs = append(sigs, s)
	}
	sort.Strings(sigs)
	merged.Found = make([]core.FoundJSON, 0, len(sigs))
	for _, s := range sigs {
		merged.Found = append(merged.Found, found[s].fj)
	}
	// The report's cluster order: known number ascending, known before
	// unknown, then signature — buildReport's comparator.
	sort.SliceStable(merged.Found, func(i, j int) bool {
		a, b := merged.Found[i], merged.Found[j]
		switch {
		case a.Known != 0 && b.Known != 0:
			return a.Known < b.Known
		case a.Known != 0:
			return true
		case b.Known != 0:
			return false
		default:
			return a.Signature < b.Signature
		}
	})
	merged.Distinct = len(merged.Found)
	bySig := inject.BySignature()
	for _, fj := range merged.Found {
		if fj.Known == 0 {
			merged.NewSignatures = append(merged.NewSignatures, fj.Signature)
			continue
		}
		merged.KnownNumbers = append(merged.KnownNumbers, fj.Known)
		if d, ok := bySig[fj.Signature]; ok {
			if d.InConnector {
				merged.InConnector++
			} else {
				merged.Generic++
			}
		}
	}
	sort.Ints(merged.KnownNumbers)
	for c, n := range inject.CategoryCounts(merged.KnownNumbers) {
		merged.Categories[string(c)] = n
	}
	res := &serve.JobResult{Report: &merged, Rendered: core.RenderReportJSON(merged)}
	return finish(spec, res)
}

// Fuzz merges seed-range shard campaigns into the parent campaign
// result, rebuilding a fuzzgen.Result so the real Render produces the
// report text.
func Fuzz(spec serve.JobSpec, subs []*serve.JobResult) (*serve.JobResult, error) {
	confs := spec.Confs
	if confs == 0 {
		confs = 6 // the fuzzgen default the campaign normalizes to
	}
	camp := &fuzzgen.Result{
		Opts: fuzzgen.Options{Seed: spec.Seed, N: spec.N, Confs: confs},
	}
	type acc struct {
		cl   fuzzgen.Cluster
		rank string
		sub  *serve.JobResult // the minimum-rank shard, for reproducers
	}
	clusters := map[string]*acc{}
	for _, sub := range subs {
		if sub == nil || sub.Fuzz == nil {
			return nil, fmt.Errorf("merge: fuzz sub-result missing campaign payload")
		}
		camp.Generated += sub.Fuzz.N
		camp.Executed += sub.Fuzz.Executed
		camp.TableCases += sub.Fuzz.TableCases
		camp.Failures += sub.Fuzz.Failures
		for _, cj := range sub.Fuzz.Clusters {
			rank := subRank(sub, cj.Signature)
			a, ok := clusters[cj.Signature]
			if !ok {
				clusters[cj.Signature] = &acc{
					cl:   fuzzgen.Cluster{Signature: cj.Signature, Known: cj.Known, Count: cj.Count, Example: cj.Example, FirstRank: rank},
					rank: rank,
					sub:  sub,
				}
				continue
			}
			a.cl.Count += cj.Count
			if better(rank, a.rank) {
				a.cl.Example = cj.Example
				a.cl.FirstRank = rank
				a.rank = rank
				a.sub = sub
			}
		}
	}
	sigs := make([]string, 0, len(clusters))
	for s := range clusters {
		sigs = append(sigs, s)
	}
	sort.Strings(sigs)
	knownSet := map[int]bool{}
	for _, s := range sigs {
		a := clusters[s]
		camp.Clusters = append(camp.Clusters, a.cl)
		if a.cl.Known > 0 {
			knownSet[a.cl.Known] = true
			continue
		}
		camp.NewSigs = append(camp.NewSigs, s)
		// The minimum-rank shard saw the campaign's first failure of
		// this signature; Shrink is pure, so its reproducer is the one
		// the unsharded campaign emits.
		if a.sub.Merge != nil {
			for i := range a.sub.Merge.Reproducers {
				if a.sub.Merge.Reproducers[i].Signature == s {
					r := a.sub.Merge.Reproducers[i]
					camp.Reproducers = append(camp.Reproducers, &r)
					break
				}
			}
		}
	}
	for n := range knownSet {
		camp.KnownHit = append(camp.KnownHit, n)
	}
	sort.Ints(camp.KnownHit)

	fj := &serve.FuzzJSON{
		Seed:          camp.Opts.Seed,
		N:             camp.Opts.N,
		Confs:         camp.Opts.Confs,
		Executed:      camp.Executed,
		TableCases:    camp.TableCases,
		Failures:      camp.Failures,
		Clusters:      make([]serve.ClusterJSON, 0, len(camp.Clusters)),
		KnownHit:      camp.KnownHit,
		NewSignatures: camp.NewSigs,
	}
	for _, cl := range camp.Clusters {
		fj.Clusters = append(fj.Clusters, serve.ClusterJSON{
			Signature: cl.Signature, Known: cl.Known, Count: cl.Count, Example: cl.Example,
		})
	}
	res := &serve.JobResult{Fuzz: fj, Rendered: camp.Render()}
	return finish(spec, res)
}

// Skew merges per-pair skew cells, in parent pair order (the sub-result
// order), into the parent matrix.
func Skew(spec serve.JobSpec, subs []*serve.JobResult) (*serve.JobResult, error) {
	m := &core.SkewMatrix{}
	sj := &serve.SkewJSON{}
	for _, sub := range subs {
		if sub == nil || sub.Skew == nil {
			return nil, fmt.Errorf("merge: skew sub-result missing matrix payload")
		}
		for _, cell := range sub.Skew.Cells {
			pair, err := versions.ParsePair(cell.Writer + "->" + cell.Reader)
			if err != nil {
				return nil, fmt.Errorf("merge: skew cell pair: %w", err)
			}
			m.Cells = append(m.Cells, core.SkewCell{
				Pair:           pair,
				Known:          cell.Known,
				SkewIDs:        cell.SkewIDs,
				SkewSignatures: cell.SkewSignatures,
				Failures:       cell.Failures,
				SkewFailures:   cell.SkewFailures,
			})
			sj.Pairs = append(sj.Pairs, pair.String())
			sj.Cells = append(sj.Cells, cell)
		}
	}
	res := &serve.JobResult{Skew: sj, Rendered: m.Render()}
	return finish(spec, res)
}

// Partition merges per-scenario campaign outcomes, in parent scenario
// order (the sub-result order), into the parent campaign result.
func Partition(spec serve.JobSpec, subs []*serve.JobResult) (*serve.JobResult, error) {
	strategy := spec.Strategy
	if strategy == "" {
		strategy = string(partition.StrategyGuided)
	}
	trials := spec.Trials
	if trials <= 0 {
		trials = 20 // partition.Run's default
	}
	hold := spec.HoldMs
	if hold <= 0 {
		hold = 1000 // partition.Run's default
	}
	pres := &partition.Result{
		Seed:     spec.Seed,
		Strategy: partition.Strategy(strategy),
		Trials:   trials,
		HoldMs:   hold,
	}
	for _, sub := range subs {
		if sub == nil || sub.Partition == nil {
			return nil, fmt.Errorf("merge: partition sub-result missing campaign payload")
		}
		pres.Outcomes = append(pres.Outcomes, sub.Partition.Outcomes...)
	}
	res := &serve.JobResult{Partition: pres, Rendered: pres.Render()}
	return finish(spec, res)
}
