package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster/chash"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
)

// Options configure a Coordinator.
type Options struct {
	// Nodes maps worker names (the ring identities) to their API
	// clients. Required, non-empty.
	Nodes map[string]*NodeClient
	// SplitFactor is the fuzz-campaign fan-out (how many contiguous
	// seed ranges a campaign splits into); 0 = the node count.
	SplitFactor int
	// Metrics receives the node-labeled fan-out counters and the
	// split/fanout/merge stage histograms; Recorder the per-sub-job
	// dispatch/steal/requeue events. Both optional.
	Metrics  *obs.Registry
	Recorder *obs.Recorder
}

// Coordinator fans a job out across the cluster: it splits the spec
// into sub-jobs, dispatches each to its cache-affinity owner (the
// sub-job key's ring owner), lets idle nodes steal queued work from the
// longest backlog, requeues the work of a node that dies mid-campaign,
// and merges the sub-results into the parent result — byte-identical
// to a single node running the unsplit job.
//
// Coordinator implements serve.Runner, so a coordinator crossd is an
// ordinary crossd whose "executor" is the cluster: admission control,
// parent-level caching, and coalescing all come from the same
// Scheduler the workers run.
type Coordinator struct {
	opts  Options
	ring  *chash.Ring
	order []string // node names, sorted, for deterministic iteration
}

// New builds a coordinator over the node set.
func New(opts Options) (*Coordinator, error) {
	if len(opts.Nodes) == 0 {
		return nil, errors.New("cluster: coordinator needs at least one node")
	}
	names := make([]string, 0, len(opts.Nodes))
	for name, c := range opts.Nodes {
		if c == nil {
			return nil, fmt.Errorf("cluster: node %q has no client", name)
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return &Coordinator{opts: opts, ring: chash.New(names...), order: names}, nil
}

// Ring exposes the coordinator's hash ring (the same ring the workers'
// peer-cache tier should be connected to).
func (c *Coordinator) Ring() *chash.Ring { return c.ring }

func (c *Coordinator) splitFactor() int {
	if c.opts.SplitFactor > 0 {
		return c.opts.SplitFactor
	}
	return len(c.order)
}

func (c *Coordinator) count(name string, labels ...string) {
	if c.opts.Metrics != nil {
		c.opts.Metrics.Counter(name, labels...).Inc()
	}
}

func (c *Coordinator) stage(stage string, d time.Duration) {
	if c.opts.Metrics != nil {
		c.opts.Metrics.Histogram(obs.MetricStageDurationMs, nil, "stage", stage).
			ObserveExemplar(float64(d)/float64(time.Millisecond), "")
	}
}

// Execute implements serve.Runner. Sub-job oracle failures surface in
// the workers' own streams; the coordinator's stream carries the
// terminal event only.
func (c *Coordinator) Execute(ctx context.Context, spec serve.JobSpec, onFailure func(core.Failure)) (*serve.JobResult, error) {
	splitStart := time.Now()
	subs, ok, err := Split(spec, c.splitFactor())
	c.stage(obs.StageSplit, time.Since(splitStart))
	if err != nil {
		return nil, err
	}
	if !ok {
		// Unsplittable: run whole on the parent key's owner (with
		// failover through the ring preference list).
		key, err := spec.CacheKey()
		if err != nil {
			return nil, err
		}
		subs = []SubJob{{Spec: spec, Key: key}}
	}

	fanStart := time.Now()
	results, err := c.fanout(ctx, subs)
	c.stage(obs.StageFanout, time.Since(fanStart))
	if err != nil {
		return nil, err
	}
	if !ok {
		return results[0], nil
	}

	mergeStart := time.Now()
	merged, err := Merge(spec, results)
	c.stage(obs.StageMerge, time.Since(mergeStart))
	return merged, err
}

// fanout dispatches the sub-jobs and blocks until every result is in,
// a sub-job fails at the job level, or no node is left alive.
func (c *Coordinator) fanout(ctx context.Context, subs []SubJob) ([]*serve.JobResult, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	d := &dispatch{
		coord:   c,
		subs:    subs,
		results: make([]*serve.JobResult, len(subs)),
		queues:  map[string][]int{},
		alive:   map[string]bool{},
	}
	d.cond = sync.NewCond(&d.mu)
	for _, name := range c.order {
		d.alive[name] = true
	}
	for i, sub := range subs {
		owner := c.ring.Owner(sub.Key)
		d.queues[owner] = append(d.queues[owner], i)
		c.count(obs.MetricSubJobsDispatch, "node", owner)
		c.opts.Recorder.Record(obs.Event{Type: obs.EvSubJobDispatched, Key: sub.Key, Detail: owner})
	}

	var wg sync.WaitGroup
	for _, name := range c.order {
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			d.nodeLoop(ctx, node)
		}(name)
	}
	// Wake every cond waiter on cancellation (job timeout or drain);
	// fanout's deferred cancel reaps this goroutine.
	go func() {
		<-ctx.Done()
		d.mu.Lock()
		d.cond.Broadcast()
		d.mu.Unlock()
	}()

	d.mu.Lock()
	for d.done < len(subs) && d.failed == nil && d.anyAlive() && ctx.Err() == nil {
		d.cond.Wait()
	}
	failed, done := d.failed, d.done
	d.mu.Unlock()
	cancel() // release loops blocked in polls
	wg.Wait()

	switch {
	case failed != nil:
		return nil, failed
	case done < len(subs):
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, errors.New("cluster: all nodes down before campaign finished")
	}
	return d.results, nil
}

// dispatch is the fan-out state: per-node work queues, liveness, and
// the result slots, all guarded by mu.
type dispatch struct {
	coord *Coordinator
	subs  []SubJob

	mu      sync.Mutex
	cond    *sync.Cond
	queues  map[string][]int
	alive   map[string]bool
	done    int
	results []*serve.JobResult
	failed  error
}

func (d *dispatch) anyAlive() bool {
	for _, up := range d.alive {
		if up {
			return true
		}
	}
	return false
}

// next claims the node's next sub-job under mu: its own queue front, or
// — work-stealing — the back of the longest other live backlog.
func (d *dispatch) next(node string) (idx int, stolen bool, ok bool) {
	if q := d.queues[node]; len(q) > 0 {
		idx = q[0]
		d.queues[node] = q[1:]
		return idx, false, true
	}
	victim := ""
	for _, name := range d.coord.order {
		if name == node || len(d.queues[name]) == 0 {
			continue
		}
		if victim == "" || len(d.queues[name]) > len(d.queues[victim]) {
			victim = name
		}
	}
	if victim == "" {
		return 0, false, false
	}
	q := d.queues[victim]
	idx = q[len(q)-1]
	d.queues[victim] = q[:len(q)-1]
	return idx, true, true
}

// requeue redistributes a dead node's claimed and queued sub-jobs to
// the live nodes, each to the first live entry of its key's preference
// list (keeping what cache affinity is left).
func (d *dispatch) requeue(node string, claimed []int) {
	pending := append(claimed, d.queues[node]...)
	d.queues[node] = nil
	for _, idx := range pending {
		target := ""
		for _, name := range d.coord.ring.Preference(d.subs[idx].Key) {
			if d.alive[name] {
				target = name
				break
			}
		}
		if target == "" {
			continue // no nodes left; the wait loop will notice
		}
		d.queues[target] = append(d.queues[target], idx)
		d.coord.count(obs.MetricSubJobsRequeued, "node", node)
		d.coord.opts.Recorder.Record(obs.Event{Type: obs.EvSubJobRequeued, Key: d.subs[idx].Key, Detail: node + " -> " + target})
	}
}

// nodeLoop executes sub-jobs on one node until the fan-out completes,
// the node dies, or a sub-job fails for real.
func (d *dispatch) nodeLoop(ctx context.Context, node string) {
	client := d.coord.opts.Nodes[node]
	for {
		d.mu.Lock()
		var idx int
		var stolen, ok bool
		for {
			if d.failed != nil || !d.alive[node] || d.done == len(d.subs) || ctx.Err() != nil {
				d.mu.Unlock()
				return
			}
			idx, stolen, ok = d.next(node)
			if ok {
				break
			}
			d.cond.Wait()
		}
		d.mu.Unlock()

		sub := d.subs[idx]
		if stolen {
			d.coord.count(obs.MetricSubJobsStolen, "node", node)
			d.coord.opts.Recorder.Record(obs.Event{Type: obs.EvSubJobStolen, Key: sub.Key, Detail: node})
		}
		res, err := client.SubmitWait(ctx, sub.Spec)

		d.mu.Lock()
		switch {
		case err == nil:
			d.results[idx] = res
			d.done++
			d.coord.opts.Recorder.Record(obs.Event{Type: obs.EvSubJobDone, Key: sub.Key, Detail: node})
		case ctx.Err() != nil:
			// The fan-out is being torn down; not a verdict on the node.
			d.mu.Unlock()
			return
		case IsNodeDown(err):
			d.alive[node] = false
			d.coord.opts.Recorder.Record(obs.Event{Type: obs.EvNodeDown, Key: sub.Key, Detail: node + ": " + err.Error()})
			d.requeue(node, []int{idx})
			d.cond.Broadcast()
			d.mu.Unlock()
			return
		default:
			if d.failed == nil {
				d.failed = fmt.Errorf("cluster: sub-job on %s: %w", node, err)
			}
		}
		d.cond.Broadcast()
		d.mu.Unlock()
	}
}
