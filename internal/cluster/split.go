// Package cluster shards crossd into a multi-node differential-testing
// cluster: a coordinator splits large jobs into sub-jobs, fans them out
// to worker nodes over the crossd HTTP API, and merges the sub-results
// into a parent result byte-identical to a single-node run. A
// consistent-hash ring over the sub-job content addresses gives every
// sub-job a cache-affinity owner, and the same ring backs the
// distributed cache tier (peer-fetch-before-recompute), so resharding
// a cluster and resubmitting a campaign re-executes nothing.
package cluster

import (
	"fmt"

	"repro/internal/cluster/merge"
	"repro/internal/partition"
	"repro/internal/serve"
	"repro/internal/versions"
)

// SubJob is one fragment of a split parent job: a plain, independently
// submittable spec plus its content address (the ring key used for
// cache-affinity dispatch).
type SubJob struct {
	Spec serve.JobSpec
	Key  string
}

// corpusFamilies is the canonical family order ("ss", "sh", "hs" —
// core.Plans() order), so corpus shards dispatch in a stable order
// regardless of how the submission spelled its family list.
var corpusFamilies = []string{"ss", "sh", "hs"}

// Split breaks a validated parent spec into sub-jobs:
//
//   - corpus: one shard per plan family (Shard sub-specs, so each
//     carries MergeMeta ranks for the deterministic merge);
//   - fuzz: factor contiguous [From, From+N) seed-index ranges (Shard
//     sub-specs, same reason);
//   - skew: one plain spec per writer->reader pair, in submission
//     order — these are the exact specs a user could submit directly,
//     so the cache tier serves either from the other;
//   - partition: one plain spec per scenario, in campaign order —
//     sound because each scenario's schedule derives from (seed,
//     scenario, trial) alone. The fixed strategy does not split: its
//     explicit cut schedule is validated against the scenario union.
//
// A job that does not split (sweep, fixed-strategy partition, or a
// degenerate size) returns ok=false and should run as a single unit.
func Split(spec serve.JobSpec, factor int) (subs []SubJob, ok bool, err error) {
	if err := spec.Validate(); err != nil {
		return nil, false, err
	}
	var specs []serve.JobSpec
	switch spec.Kind {
	case serve.KindCorpus:
		requested := map[string]bool{}
		for _, f := range spec.Families {
			requested[f] = true
		}
		for _, f := range corpusFamilies {
			if len(spec.Families) > 0 && !requested[f] {
				continue
			}
			sub := spec
			sub.Families = []string{f}
			sub.Shard = true
			specs = append(specs, sub)
		}
	case serve.KindFuzz:
		if factor < 2 || spec.N < 2 {
			return nil, false, nil
		}
		if factor > spec.N {
			factor = spec.N
		}
		// Contiguous ranges, remainder spread over the first shards so
		// sizes differ by at most one.
		base, rem := spec.N/factor, spec.N%factor
		from := spec.From
		for i := 0; i < factor; i++ {
			n := base
			if i < rem {
				n++
			}
			sub := spec
			sub.From = from
			sub.N = n
			sub.Shard = true
			specs = append(specs, sub)
			from += n
		}
	case serve.KindSkew:
		pairs := spec.Pairs
		if len(pairs) == 0 {
			for _, p := range versions.DefaultPairs() {
				pairs = append(pairs, p.String())
			}
		}
		for _, p := range pairs {
			sub := spec
			sub.Pairs = []string{p}
			specs = append(specs, sub)
		}
	case serve.KindPartition:
		if spec.Strategy == string(partition.StrategyFixed) {
			return nil, false, nil
		}
		scenarios := spec.Scenarios
		if len(scenarios) == 0 {
			for _, sc := range partition.Scenarios() {
				scenarios = append(scenarios, sc.Name)
			}
		}
		for _, name := range scenarios {
			sub := spec
			sub.Scenarios = []string{name}
			specs = append(specs, sub)
		}
	default:
		return nil, false, nil
	}
	if len(specs) < 2 {
		return nil, false, nil
	}
	subs = make([]SubJob, 0, len(specs))
	for _, s := range specs {
		key, err := s.CacheKey()
		if err != nil {
			return nil, false, fmt.Errorf("cluster: sub-job key: %w", err)
		}
		subs = append(subs, SubJob{Spec: s, Key: key})
	}
	return subs, true, nil
}

// Merge reassembles sub-results (in Split's sub-job order) into the
// parent result. The heavy lifting lives in cluster/merge; this is the
// kind dispatch.
func Merge(spec serve.JobSpec, subs []*serve.JobResult) (*serve.JobResult, error) {
	switch spec.Kind {
	case serve.KindCorpus:
		return merge.Corpus(spec, subs)
	case serve.KindFuzz:
		return merge.Fuzz(spec, subs)
	case serve.KindSkew:
		return merge.Skew(spec, subs)
	case serve.KindPartition:
		return merge.Partition(spec, subs)
	}
	return nil, fmt.Errorf("cluster: kind %q does not merge", spec.Kind)
}
