package versions

import (
	"strings"
	"testing"
)

func TestProfilesResolve(t *testing.T) {
	for _, v := range SparkVersions() {
		p, ok := GetSparkProfile(v)
		if !ok {
			t.Fatalf("SparkProfile(%q) missing", v)
		}
		if p.Version != v {
			t.Errorf("Spark profile %q carries version %q", v, p.Version)
		}
		if len(p.Conf) == 0 {
			t.Errorf("Spark profile %q ships no configuration defaults", v)
		}
		if len(p.Notes) == 0 {
			t.Errorf("Spark profile %q has no JIRA/migration notes", v)
		}
	}
	for _, v := range HiveVersions() {
		p, ok := GetHiveProfile(v)
		if !ok {
			t.Fatalf("HiveProfile(%q) missing", v)
		}
		if p.Version != v {
			t.Errorf("Hive profile %q carries version %q", v, p.Version)
		}
		if len(p.Notes) == 0 {
			t.Errorf("Hive profile %q has no JIRA/migration notes", v)
		}
	}
	if _, ok := GetSparkProfile("9.9.9"); ok {
		t.Error("unknown Spark version resolved")
	}
	if _, ok := GetHiveProfile("9.9.9"); ok {
		t.Error("unknown Hive version resolved")
	}
}

// Every version-gated behavior must be keyed to an identifiable anchor:
// a JIRA id (PROJECT-NNNN) or a migration-guide key (guide:section).
func TestNotesAreAnchored(t *testing.T) {
	check := func(engine, v string, notes []Note) {
		for _, n := range notes {
			jira := strings.ContainsRune(n.ID, '-') &&
				(strings.HasPrefix(n.ID, "SPARK-") || strings.HasPrefix(n.ID, "HIVE-"))
			guide := strings.ContainsRune(n.ID, ':')
			if !jira && !guide {
				t.Errorf("%s %s note %q is not a JIRA id or migration-guide key", engine, v, n.ID)
			}
			if n.Detail == "" {
				t.Errorf("%s %s note %q has no detail", engine, v, n.ID)
			}
		}
	}
	for _, v := range SparkVersions() {
		check("spark", v, SparkNotes(v))
	}
	for _, v := range HiveVersions() {
		check("hive", v, HiveNotes(v))
	}
}

// SPARK-24768: built-in Avro exists from 2.4 on, and only from 2.4 on.
func TestBuiltinAvroGate(t *testing.T) {
	for v, want := range map[string]bool{Spark23: false, Spark24: true, Spark32: true} {
		p, _ := GetSparkProfile(v)
		if p.BuiltinAvro != want {
			t.Errorf("Spark %s BuiltinAvro = %v, want %v", v, p.BuiltinAvro, want)
		}
	}
}

// The baseline stack must equal the simulators' unversioned defaults:
// Spark 3.2 ANSI-era confs, Hive 3.1 UTC timestamps + CHAR padding +
// ORC struct fold. The Figure-6 golden pin depends on this.
func TestBaselineProfileMatchesDefaults(t *testing.T) {
	sp, _ := GetSparkProfile(Spark32)
	want := map[string]string{
		"spark.sql.storeAssignmentPolicy":      "ansi",
		"spark.sql.ansi.enabled":               "true",
		"spark.sql.legacy.datetimeRebase":      "false",
		"spark.sql.hive.writeLegacyDecimal":    "true",
		"spark.sql.legacy.charVarcharAsString": "false",
	}
	for k, v := range want {
		if got := sp.Conf[k]; got != v {
			t.Errorf("Spark %s conf %s = %q, want %q", Spark32, k, got, v)
		}
	}
	hp, _ := GetHiveProfile(Hive31)
	if !hp.ReadSideCharPadding || !hp.OrcStructFold || hp.ParquetLocalZoneSeconds != 0 {
		t.Errorf("Hive %s profile diverges from the modeled baseline: %+v", Hive31, hp)
	}
}

func TestParseStackAndPair(t *testing.T) {
	st, err := ParseStack("2.3.0/2.3.9")
	if err != nil {
		t.Fatalf("ParseStack: %v", err)
	}
	if st.Spark != Spark23 || st.Hive != Hive23 {
		t.Fatalf("ParseStack = %+v", st)
	}
	p, err := ParsePair("2.3.0/2.3.9->3.2.1/3.1.2")
	if err != nil {
		t.Fatalf("ParsePair: %v", err)
	}
	if !p.Skewed() {
		t.Error("upgrade pair reported unskewed")
	}
	if got := p.String(); got != "2.3.0/2.3.9->3.2.1/3.1.2" {
		t.Errorf("Pair.String() = %q", got)
	}
	if rt, err := ParsePair(p.String()); err != nil || rt != p {
		t.Errorf("ParsePair round trip = %+v, %v", rt, err)
	}
	// A bare stack is the unskewed pair.
	b, err := ParsePair("3.2.1/3.1.2")
	if err != nil {
		t.Fatalf("ParsePair(bare): %v", err)
	}
	if b.Skewed() || b != BaselinePair() {
		t.Errorf("bare stack pair = %+v", b)
	}
	// Unknown profiles are rejected, never normalized.
	for _, bad := range []string{"1.6.0/3.1.2", "3.2.1/0.13.0", "3.2.1", "x->y", "2.3.0/2.3.9->3.2.1/9.9.9"} {
		if _, err := ParsePair(bad); err == nil {
			t.Errorf("ParsePair(%q) accepted an unknown profile", bad)
		}
	}
}

func TestDefaultPairs(t *testing.T) {
	pairs := DefaultPairs()
	if len(pairs) != 5 {
		t.Fatalf("DefaultPairs: %d pairs", len(pairs))
	}
	if pairs[0] != BaselinePair() {
		t.Errorf("first default pair is not the baseline: %v", pairs[0])
	}
	seen := map[string]bool{}
	for i, p := range pairs {
		if err := p.Validate(); err != nil {
			t.Errorf("pair %d invalid: %v", i, err)
		}
		if seen[p.String()] {
			t.Errorf("duplicate pair %v", p)
		}
		seen[p.String()] = true
		if i > 0 && !p.Skewed() {
			t.Errorf("pair %d should be skewed: %v", i, p)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"2.3.0", "2.4.8", -1},
		{"3.2.1", "3.2.1", 0},
		{"3.2.1", "2.4.8", 1},
		{"3.0", "3.0.0", 0},
		{"3.1.0", "3.0.99", 1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if !AtLeast("3.2.1", "3.0.0") || AtLeast("2.4.8", "3.0.0") {
		t.Error("AtLeast ordering wrong")
	}
}
