// Package versions defines the versioned behavior profiles of the
// simulated Spark and Hive engines — the upgrade axis of the
// cross-system test matrix. The paper identifies software upgrades and
// version mismatches between interacting systems as a leading trigger
// of CSI failures (§5): the same deployment behaves differently because
// the releases ship different defaults and different connector code.
//
// Every version-gated behavior modeled here is keyed to the real JIRA
// issue or migration-guide note that changed it:
//
//   - SPARK-24768: the Avro data source became built in with Spark 2.4;
//     a 2.3 session has no "avro" source at all.
//   - SPARK-26651 / SPARK-31404: Spark 3.0 switched from the hybrid
//     Julian/Gregorian calendar to the proleptic Gregorian calendar;
//     pre-3.0 writers and readers rebase datetimes.
//   - SPARK-28730: Spark 3.0 introduced spark.sql.storeAssignmentPolicy
//     with default "ansi"; 2.x inserts coerce silently ("legacy").
//   - Spark 3.0 SQL migration guide, ANSI section: string-parsing cast
//     strictness (spark.sql.ansi.enabled) does not exist in 2.x.
//   - SPARK-33480: CHAR/VARCHAR became real types in Spark 3.1; before
//     that they were plain STRING (legacy.charVarcharAsString).
//   - HIVE-12192: Hive 3.1 carries out timestamp computations in UTC;
//     earlier Hive interprets stored Parquet timestamps in the local
//     zone.
//   - SPARK-40616 (context): Hive 3 pads CHAR to its declared length on
//     the read side; the modeled Hive 2.3 SerDe returns stored bytes.
//   - SPARK-40637 (context): the all-NULL-struct-folds-to-NULL behavior
//     lives in Hive 3's ORC reader; the modeled Hive 2.3 reader keeps
//     the struct.
//
// The package sits below the simulators: sparksim and hivesim consume
// the profiles, core executes writer-stack × reader-stack pairs, and
// serve/fuzzgen address results by the pair.
package versions

import (
	"fmt"
	"sort"
	"strings"
)

// Supported Spark versions.
const (
	// Spark23 approximates Spark 2.3.0: legacy store assignment and
	// casts, hybrid-calendar datetimes, CHAR/VARCHAR as STRING, and no
	// built-in Avro data source.
	Spark23 = "2.3.0"
	// Spark24 approximates Spark 2.4.8: 2.3 semantics plus the built-in
	// Avro data source of SPARK-24768.
	Spark24 = "2.4.8"
	// Spark32 approximates Spark 3.2.1, the baseline: ANSI store
	// assignment, proleptic Gregorian datetimes, real CHAR/VARCHAR.
	Spark32 = "3.2.1"
)

// Supported Hive versions.
const (
	// Hive23 approximates Hive 2.3.9: local-time Parquet timestamps, no
	// read-side CHAR padding, no ORC all-NULL struct fold.
	Hive23 = "2.3.9"
	// Hive31 approximates Hive 3.1.2, the baseline metastore and SerDe
	// behavior the Figure-6 pin was captured against.
	Hive31 = "3.1.2"
)

// Note keys one version-gated behavior to the JIRA issue or
// migration-guide note that changed it.
type Note struct {
	// ID is a JIRA id ("SPARK-24768") or a migration-guide key
	// ("spark-3.0-migration:ansi").
	ID string
	// Detail is the one-line behavior delta.
	Detail string
}

// SparkProfile is the cross-system-visible personality of one Spark
// release: the configuration defaults it ships and the capabilities it
// has at all.
type SparkProfile struct {
	Version string
	// Conf is the release's defaults for the modeled configuration keys.
	// The literal key strings equal the sparksim.Conf* constants; a test
	// in sparksim pins them against drift (versions cannot import
	// sparksim without a cycle).
	Conf map[string]string
	// BuiltinAvro reports whether the release ships the built-in Avro
	// data source (SPARK-24768, since 2.4). Without it every Avro
	// read/write fails to find the data source.
	BuiltinAvro bool
	Notes       []Note
}

// HiveProfile is the cross-system-visible personality of one Hive
// release: metastore schema handling and SerDe selection gates.
type HiveProfile struct {
	Version string
	// ReadSideCharPadding: Hive 3 pads CHAR(n) to n on the read side;
	// the modeled 2.3 SerDe returns the stored bytes unpadded.
	ReadSideCharPadding bool
	// OrcStructFold: Hive 3's ORC reader folds a struct whose members
	// are all NULL into a NULL struct (the SPARK-40637 behavior); the
	// modeled 2.3 reader keeps the struct.
	OrcStructFold bool
	// ParquetLocalZoneSeconds is the UTC offset the release's Parquet
	// reader applies to stored timestamps. Hive 3.1 computes timestamps
	// in UTC (HIVE-12192) and applies none; earlier Hive interprets the
	// stored instant in the deployment's local zone.
	ParquetLocalZoneSeconds int64
	Notes                   []Note
}

// The literal Spark configuration keys (same strings as the sparksim
// constants; see SparkProfile.Conf).
const (
	confStoreAssignment = "spark.sql.storeAssignmentPolicy"
	confAnsi            = "spark.sql.ansi.enabled"
	confCharAsString    = "spark.sql.legacy.charVarcharAsString"
	confRebase          = "spark.sql.legacy.datetimeRebase"
	confLegacyDecimal   = "spark.sql.hive.writeLegacyDecimal"
)

var sparkProfiles = map[string]SparkProfile{
	Spark23: {
		Version: Spark23,
		Conf: map[string]string{
			confStoreAssignment: "legacy",
			confAnsi:            "false",
			confRebase:          "true",
			confLegacyDecimal:   "true",
			confCharAsString:    "true",
		},
		BuiltinAvro: false,
		Notes: []Note{
			{ID: "SPARK-24768", Detail: "no built-in Avro data source before 2.4"},
			{ID: "SPARK-26651", Detail: "hybrid Julian/Gregorian calendar before 3.0"},
			{ID: "SPARK-28730", Detail: "silent legacy store assignment before 3.0"},
			{ID: "spark-3.0-migration:ansi", Detail: "no ANSI cast strictness before 3.0"},
			{ID: "SPARK-33480", Detail: "CHAR/VARCHAR are plain STRING before 3.1"},
		},
	},
	Spark24: {
		Version: Spark24,
		Conf: map[string]string{
			confStoreAssignment: "legacy",
			confAnsi:            "false",
			confRebase:          "true",
			confLegacyDecimal:   "true",
			confCharAsString:    "true",
		},
		BuiltinAvro: true,
		Notes: []Note{
			{ID: "SPARK-24768", Detail: "built-in Avro data source since 2.4"},
			{ID: "SPARK-26651", Detail: "hybrid Julian/Gregorian calendar before 3.0"},
			{ID: "SPARK-28730", Detail: "silent legacy store assignment before 3.0"},
			{ID: "spark-3.0-migration:ansi", Detail: "no ANSI cast strictness before 3.0"},
			{ID: "SPARK-33480", Detail: "CHAR/VARCHAR are plain STRING before 3.1"},
		},
	},
	Spark32: {
		Version: Spark32,
		Conf: map[string]string{
			confStoreAssignment: "ansi",
			confAnsi:            "true",
			confRebase:          "false",
			confLegacyDecimal:   "true",
			confCharAsString:    "false",
		},
		BuiltinAvro: true,
		Notes: []Note{
			{ID: "SPARK-28730", Detail: "ANSI store assignment by default since 3.0"},
			{ID: "SPARK-26651", Detail: "proleptic Gregorian calendar since 3.0"},
			{ID: "SPARK-33480", Detail: "CHAR/VARCHAR length semantics since 3.1"},
		},
	},
}

var hiveProfiles = map[string]HiveProfile{
	Hive23: {
		Version:             Hive23,
		ReadSideCharPadding: false,
		OrcStructFold:       false,
		// The modeled deployment's local zone, America/Los_Angeles.
		ParquetLocalZoneSeconds: -8 * 3600,
		Notes: []Note{
			{ID: "HIVE-12192", Detail: "local-time timestamp computations before 3.1"},
			{ID: "SPARK-40616", Detail: "no read-side CHAR padding before Hive 3"},
			{ID: "SPARK-40637", Detail: "no ORC all-NULL struct fold before Hive 3"},
		},
	},
	Hive31: {
		Version:                 Hive31,
		ReadSideCharPadding:     true,
		OrcStructFold:           true,
		ParquetLocalZoneSeconds: 0,
		Notes: []Note{
			{ID: "HIVE-12192", Detail: "timestamp computations in UTC since 3.1"},
		},
	},
}

// GetSparkProfile returns a Spark release's profile.
func GetSparkProfile(version string) (SparkProfile, bool) {
	p, ok := sparkProfiles[version]
	return p, ok
}

// GetHiveProfile returns a Hive release's profile.
func GetHiveProfile(version string) (HiveProfile, bool) {
	p, ok := hiveProfiles[version]
	return p, ok
}

// SparkVersions lists the supported Spark versions in release order.
func SparkVersions() []string { return []string{Spark23, Spark24, Spark32} }

// HiveVersions lists the supported Hive versions in release order.
func HiveVersions() []string { return []string{Hive23, Hive31} }

// Stack is one deployed engine pair: the Spark and Hive versions that
// run side by side over the shared metastore and warehouse.
type Stack struct {
	Spark string `json:"spark"`
	Hive  string `json:"hive"`
}

// String renders the stack as "spark/hive", e.g. "3.2.1/3.1.2".
func (s Stack) String() string { return s.Spark + "/" + s.Hive }

// Validate rejects a stack naming an unknown profile. It never
// normalizes: an unknown version is an error, not a fallback to a
// default — a cache key or a test matrix must not silently alias two
// different deployments.
func (s Stack) Validate() error {
	if _, ok := sparkProfiles[s.Spark]; !ok {
		return fmt.Errorf("versions: unknown Spark version %q (have %v)", s.Spark, SparkVersions())
	}
	if _, ok := hiveProfiles[s.Hive]; !ok {
		return fmt.Errorf("versions: unknown Hive version %q (have %v)", s.Hive, HiveVersions())
	}
	return nil
}

// ParseStack parses "spark/hive" (e.g. "2.3.0/2.3.9") and validates it.
func ParseStack(s string) (Stack, error) {
	spark, hive, ok := strings.Cut(s, "/")
	if !ok {
		return Stack{}, fmt.Errorf("versions: want sparkVersion/hiveVersion, got %q", s)
	}
	st := Stack{Spark: spark, Hive: hive}
	if err := st.Validate(); err != nil {
		return Stack{}, err
	}
	return st, nil
}

// Pair is one cell of the skew matrix: data is written by the Writer
// stack and read by the Reader stack across the shared metastore and
// warehouse — the upgrade boundary.
type Pair struct {
	Writer Stack `json:"writer"`
	Reader Stack `json:"reader"`
}

// String renders the pair as "writer->reader",
// e.g. "2.3.0/2.3.9->3.2.1/3.1.2".
func (p Pair) String() string { return p.Writer.String() + "->" + p.Reader.String() }

// Skewed reports whether the writer and reader stacks differ.
func (p Pair) Skewed() bool { return p.Writer != p.Reader }

// Validate rejects a pair whose either side names an unknown profile.
func (p Pair) Validate() error {
	if err := p.Writer.Validate(); err != nil {
		return err
	}
	return p.Reader.Validate()
}

// ParsePair parses "writerSpark/writerHive->readerSpark/readerHive".
// A bare "spark/hive" stack means an unskewed pair (writer == reader).
func ParsePair(s string) (Pair, error) {
	w, r, ok := strings.Cut(s, "->")
	if !ok {
		st, err := ParseStack(s)
		if err != nil {
			return Pair{}, err
		}
		return Pair{Writer: st, Reader: st}, nil
	}
	ws, err := ParseStack(w)
	if err != nil {
		return Pair{}, err
	}
	rs, err := ParseStack(r)
	if err != nil {
		return Pair{}, err
	}
	return Pair{Writer: ws, Reader: rs}, nil
}

// BaselineStack is the stack the golden Figure-6 pin was captured
// against: Spark 3.2.1 with Hive 3.1.2.
func BaselineStack() Stack { return Stack{Spark: Spark32, Hive: Hive31} }

// BaselinePair is the unskewed baseline cell. It must reproduce exactly
// the 15 Figure-6 discrepancies and zero skew-only discrepancies.
func BaselinePair() Pair {
	return Pair{Writer: BaselineStack(), Reader: BaselineStack()}
}

// DefaultPairs is the default skew matrix: the baseline, a full
// upgrade (old cluster wrote, new cluster reads), a half-upgraded
// writer (Spark 2.4 already has built-in Avro), a Hive-only upgrade
// (isolates the Hive 2.3 vs 3.1 read-side behaviors), and a
// downgrade-read (new cluster wrote, old cluster reads — the rollback
// scenario).
func DefaultPairs() []Pair {
	old := Stack{Spark: Spark23, Hive: Hive23}
	half := Stack{Spark: Spark24, Hive: Hive23}
	oldHive := Stack{Spark: Spark32, Hive: Hive23}
	now := BaselineStack()
	return []Pair{
		{Writer: now, Reader: now},
		{Writer: old, Reader: now},
		{Writer: half, Reader: now},
		{Writer: oldHive, Reader: now},
		{Writer: now, Reader: old},
	}
}

// Compare orders two dotted version strings numerically per segment
// (missing segments count as zero): -1, 0, or +1.
func Compare(a, b string) int {
	as, bs := strings.Split(a, "."), strings.Split(b, ".")
	for i := 0; i < len(as) || i < len(bs); i++ {
		av, bv := 0, 0
		if i < len(as) {
			av = atoiSafe(as[i])
		}
		if i < len(bs) {
			bv = atoiSafe(bs[i])
		}
		if av != bv {
			if av < bv {
				return -1
			}
			return 1
		}
	}
	return 0
}

// AtLeast reports whether version v is at least version min.
func AtLeast(v, min string) bool { return Compare(v, min) >= 0 }

func atoiSafe(s string) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// SparkNotes returns the behavior notes of a Spark release, sorted by
// note id for deterministic rendering.
func SparkNotes(version string) []Note {
	p, ok := sparkProfiles[version]
	if !ok {
		return nil
	}
	return sortedNotes(p.Notes)
}

// HiveNotes returns the behavior notes of a Hive release.
func HiveNotes(version string) []Note {
	p, ok := hiveProfiles[version]
	if !ok {
		return nil
	}
	return sortedNotes(p.Notes)
}

func sortedNotes(in []Note) []Note {
	out := append([]Note(nil), in...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
