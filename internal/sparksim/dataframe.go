package sparksim

import (
	"errors"
	"fmt"

	"repro/internal/csi"
	"repro/internal/hivesim"
	"repro/internal/obs"
	"repro/internal/serde"
	"repro/internal/sqlval"
)

// DataFrame is an in-memory typed dataset bound to a session, the
// second write/read interface of the Figure 6 test setup. Values are
// coerced into the frame's schema with Spark's silent legacy semantics:
// the DataFrame API does not apply ANSI store assignment, which is the
// asymmetry behind the "inconsistent error behavior" discrepancies.
type DataFrame struct {
	sess   *Session
	schema serde.Schema
	rows   []sqlval.Row
}

// CreateDataFrame builds a DataFrame, silently coercing every value to
// the schema (invalid values become NULL, overlong strings truncate,
// out-of-range integers wrap).
func (s *Session) CreateDataFrame(schema serde.Schema, rows []sqlval.Row) (*DataFrame, error) {
	out := make([]sqlval.Row, len(rows))
	for r, row := range rows {
		if len(row) != len(schema.Columns) {
			return nil, fmt.Errorf("spark: row %d has %d values, schema has %d columns", r, len(row), len(schema.Columns))
		}
		converted := make(sqlval.Row, len(row))
		for i, v := range row {
			c, _ := sqlval.Cast(v, schema.Columns[i].Type, sqlval.CastLegacy)
			converted[i] = c
		}
		out[r] = converted
	}
	return &DataFrame{sess: s, schema: schema, rows: out}, nil
}

// Schema returns the frame's schema.
func (df *DataFrame) Schema() serde.Schema { return df.schema }

// Collect returns the frame's rows.
func (df *DataFrame) Collect() []sqlval.Row { return df.rows }

// SaveAsTable writes the frame to a warehouse table through the Hive
// connector, creating the table as a Spark datasource table (the
// case-preserving Spark schema is persisted for every format) if it
// does not exist, and appending otherwise.
func (df *DataFrame) SaveAsTable(name, format string) error {
	return df.SaveAsTableSpan(nil, name, format)
}

// SaveAsTableSpan is SaveAsTable under an explicit parent span; the
// save gets a Spark data-plane span with metastore/SerDe/HDFS children.
func (df *DataFrame) SaveAsTableSpan(parent *obs.Span, name, format string) error {
	s := df.sess
	sp := s.tracer.Span(parent, csi.Spark, csi.DataPlane, "dataframe/save")
	sp.Set("table", name).Set("format", format)
	err := df.saveAsTable(sp, name, format)
	sp.Fail(err).End()
	return err
}

func (df *DataFrame) saveAsTable(sp *obs.Span, name, format string) error {
	s := df.sess
	table, err := s.ms.GetTable(name)
	if errors.Is(err, hivesim.ErrNoSuchTable) {
		table, err = s.createTable(sp, name, df.schema.Columns, nil, format, true)
	}
	if err != nil {
		return err
	}
	if table.Format != format {
		return fmt.Errorf("spark: table %s uses format %s, cannot append as %s", name, table.Format, format)
	}
	schema := serde.Schema{Columns: s.applyCharVarcharAsString(df.schema.Columns)}
	rows := df.rows
	if s.conf.Bool(ConfCharVarcharAsString) {
		rows = make([]sqlval.Row, len(df.rows))
		for r, row := range df.rows {
			out := make(sqlval.Row, len(row))
			for i, v := range row {
				c, _ := sqlval.Cast(v, schema.Columns[i].Type, sqlval.CastLegacy)
				out[i] = c
			}
			rows[r] = out
		}
	}
	return s.writeRows(sp, table, schema, rows, true)
}

// Table reads a warehouse table through the DataFrame interface. Unlike
// SparkSQL, the DataFrame reader does not fall back to the Hive schema
// when the strict native reader fails — the IncompatibleSchemaException
// of SPARK-39075 escapes to the caller.
func (s *Session) Table(name string) (*Result, error) {
	return s.TableSpan(nil, name)
}

// TableSpan is Table under an explicit parent span.
func (s *Session) TableSpan(parent *obs.Span, name string) (*Result, error) {
	sp := s.tracer.Span(parent, csi.Spark, csi.DataPlane, "dataframe/scan")
	sp.Set("table", name)
	res, err := s.tableScan(sp, name)
	sp.Fail(err).End()
	return res, err
}

func (s *Session) tableScan(sp *obs.Span, name string) (*Result, error) {
	table, err := s.ms.GetTable(name)
	sp.Child(csi.Hive, csi.DataPlane, "metastore/get-table").
		Set("table", name).Fail(err).End()
	if err != nil {
		return nil, err
	}
	schema, fromProps, err := s.resolveSchema(table)
	if err != nil {
		return nil, err
	}
	var warnings []string
	if !fromProps {
		warnings = append(warnings, fallbackWarning(table.Name))
	}
	rows, err := s.readTable(sp, table, schema, true)
	if err != nil {
		return nil, err
	}
	cols := append(append([]serde.Column(nil), schema.Columns...), table.PartitionCols...)
	return &Result{Columns: cols, Rows: rows, Warnings: warnings}, nil
}
