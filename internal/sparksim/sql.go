package sparksim

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/csi"
	"repro/internal/hivesim"
	"repro/internal/obs"
	"repro/internal/serde"
	"repro/internal/sqlparse"
	"repro/internal/sqlval"
)

// DefaultSQLFormat is the format for SparkSQL CREATE TABLE without a
// STORED AS / USING clause.
const DefaultSQLFormat = "parquet"

// SQL executes one SparkSQL statement.
func (s *Session) SQL(query string) (*Result, error) {
	return s.SQLSpan(nil, query)
}

// SQLSpan executes one SparkSQL statement under an explicit parent
// span. The statement gets a Spark data-plane span with children for
// every cross-system boundary it crosses (metastore calls, SerDe
// encode/decode, warehouse file I/O). With no tracer attached this is
// exactly SQL.
func (s *Session) SQLSpan(parent *obs.Span, query string) (*Result, error) {
	sp := s.tracer.Span(parent, csi.Spark, csi.DataPlane, "sparksql")
	res, err := s.sqlDispatch(sp, query)
	sp.Fail(err).End()
	return res, err
}

func (s *Session) sqlDispatch(sp *obs.Span, query string) (*Result, error) {
	stmt, err := sqlparse.Parse(query)
	if err != nil {
		return nil, err
	}
	switch st := stmt.(type) {
	case *sqlparse.CreateTable:
		return s.sqlCreate(sp, st)
	case *sqlparse.DropTable:
		err := s.ms.DropTable(st.Table, st.IfExists)
		sp.Child(csi.Hive, csi.ManagementPlane, "metastore/drop-table").
			Set("table", st.Table).Fail(err).End()
		return &Result{}, err
	case *sqlparse.Insert:
		return s.sqlInsert(sp, st)
	case *sqlparse.Select:
		return s.sqlSelect(sp, st)
	default:
		return nil, fmt.Errorf("spark: unsupported statement %T", stmt)
	}
}

func (s *Session) sqlCreate(sp *obs.Span, st *sqlparse.CreateTable) (*Result, error) {
	format := st.Format
	if format == "" {
		format = DefaultSQLFormat
	}
	cols := make([]serde.Column, len(st.Columns))
	for i, c := range st.Columns {
		cols[i] = serde.Column{Name: c.Name, Type: c.Type}
	}
	partCols := make([]serde.Column, len(st.PartitionedBy))
	for i, c := range st.PartitionedBy {
		partCols[i] = serde.Column{Name: c.Name, Type: c.Type}
	}
	_, err := s.createTable(sp, st.Table, cols, partCols, format, false)
	if err != nil && st.IfNotExists && errors.Is(err, hivesim.ErrTableExists) {
		return &Result{}, nil
	}
	return &Result{}, err
}

func (s *Session) evalMode() sqlval.CastMode {
	if s.conf.Bool(ConfAnsiEnabled) {
		return sqlval.CastANSI
	}
	return sqlval.CastLegacy
}

func (s *Session) sqlInsert(sp *obs.Span, st *sqlparse.Insert) (*Result, error) {
	table, err := s.ms.GetTable(st.Table)
	sp.Child(csi.Hive, csi.DataPlane, "metastore/get-table").
		Set("table", st.Table).Fail(err).End()
	if err != nil {
		return nil, err
	}
	schema := table.Schema()
	allCols := table.AllColumns()
	rows := make([]sqlval.Row, 0, len(st.Rows))
	for _, exprRow := range st.Rows {
		if len(exprRow) != len(allCols) {
			return nil, fmt.Errorf("spark: INSERT has %d values, table %s has %d columns",
				len(exprRow), table.Name, len(allCols))
		}
		row := make(sqlval.Row, len(exprRow))
		for i, e := range exprRow {
			v, err := sqlparse.Eval(e, s.evalMode())
			if err != nil {
				return nil, err
			}
			coerced, err := s.sqlInsertCast(v, allCols[i].Type)
			if err != nil {
				return nil, fmt.Errorf("spark: writing column %q: %w", allCols[i].Name, err)
			}
			row[i] = coerced
		}
		rows = append(rows, row)
	}
	if st.Overwrite {
		if err := s.truncate(table); err != nil {
			return nil, err
		}
	}
	if err := s.writeRows(sp, table, schema, rows, false); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

// sqlInsertCast applies SparkSQL's store-assignment coercion: overflow
// strictness is governed by spark.sql.storeAssignmentPolicy, invalid
// string input by spark.sql.ansi.enabled, and CHAR/VARCHAR length by
// spark.sql.legacy.charVarcharAsString (which removes the check
// entirely at table-creation time).
func (s *Session) sqlInsertCast(v sqlval.Value, to sqlval.Type) (sqlval.Value, error) {
	out, err := sqlval.Cast(v, to, sqlval.CastANSI)
	if err == nil {
		return out, nil
	}
	var ce *sqlval.CastError
	strict := true
	if errors.As(err, &ce) {
		switch ce.Code {
		case "CAST_OVERFLOW":
			strict = strings.EqualFold(s.conf.Get(ConfStoreAssignmentPolicy), "ansi")
		case "CAST_INVALID_INPUT":
			strict = s.conf.Bool(ConfAnsiEnabled)
		}
	}
	if strict {
		return sqlval.Value{}, err
	}
	out, _ = sqlval.Cast(v, to, sqlval.CastLegacy)
	return out, nil
}

func (s *Session) sqlSelect(sp *obs.Span, st *sqlparse.Select) (*Result, error) {
	table, err := s.ms.GetTable(st.Table)
	sp.Child(csi.Hive, csi.DataPlane, "metastore/get-table").
		Set("table", st.Table).Fail(err).End()
	if err != nil {
		return nil, err
	}
	schema, fromProps, err := s.resolveSchema(table)
	if err != nil {
		return nil, err
	}
	var warnings []string
	if !fromProps {
		warnings = append(warnings, fallbackWarning(table.Name))
	}
	rows, err := s.readTable(sp, table, schema, true)
	if err != nil && fromProps {
		// SparkSQL's Hive-table read path survives strict-reader failures
		// by falling back to the Hive metastore schema, which is not case
		// preserving (HIVE-26533 / SPARK-40409).
		warnings = append(warnings, fallbackWarning(table.Name)+fmt.Sprintf(" (native read failed: %v)", err))
		schema = table.Schema()
		rows, err = s.readTable(sp, table, schema, false)
	}
	if err != nil {
		return nil, err
	}
	projCols := append(append([]serde.Column(nil), schema.Columns...), table.PartitionCols...)
	res, err := projectSpark(projCols, rows, st, s.evalMode())
	if err != nil {
		return nil, err
	}
	res.Warnings = append(res.Warnings, warnings...)
	return res, nil
}

func fallbackWarning(table string) string {
	return fmt.Sprintf("WARN HiveExternalCatalog: reading table %s using the Hive schema, which is not case preserving", table)
}

// projectSpark adapts the shared projection helper to Spark's result
// type.
func projectSpark(columns []serde.Column, rows []sqlval.Row, st *sqlparse.Select, mode sqlval.CastMode) (*Result, error) {
	hr, err := hivesim.Project(columns, rows, st, mode)
	if err != nil {
		return nil, err
	}
	return &Result{Columns: hr.Columns, Rows: hr.Rows, Warnings: hr.Warnings}, nil
}
