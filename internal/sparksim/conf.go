// Package sparksim simulates the Spark engine of the §8 case study: a
// session with SQL and DataFrame front ends over a Hive-connector that
// shares Hive's metastore and warehouse.
//
// The engine reproduces Spark's cross-system-visible personality, each
// behaviour keyed to the JIRA issue it models:
//
//   - SparkSQL inserts enforce ANSI store assignment (errors on
//     overflow/invalid input) while the DataFrame writer coerces
//     silently (SPARK-40439, SPARK-40624, SPARK-40629, SPARK-40630);
//   - the DataFrame writer emits Spark's legacy binary decimal
//     encoding that Hive cannot read (SPARK-39158);
//   - the Avro deserializer on the DataFrame path requires the file
//     schema to match the catalog schema exactly and throws
//     IncompatibleSchemaException on Avro's INT-widened BYTE/SHORT
//     (SPARK-39075);
//   - SparkSQL reads fall back to the case-insensitive Hive schema
//     when Spark's case-preserving schema is unavailable, logging
//     "not case preserving" (HIVE-26533 / SPARK-40409);
//   - CHAR values are stripped of trailing pad on read unless
//     spark.sql.readSideCharPadding is set (SPARK-40616);
//   - Parquet timestamps are written session-zone-adjusted with writer
//     metadata that Hive ignores (the HIVE-26528 model), and dates use
//     the proleptic Gregorian calendar while Hive uses the hybrid one.
package sparksim

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// Configuration keys modeled by the simulator. SparkSQL alone has 350+
// parameters; these are the ones the §8.2 discrepancies hinge on.
const (
	// ConfStoreAssignmentPolicy is "ansi" (errors on overflow) or
	// "legacy" (silent wrap/NULL) for SparkSQL INSERT coercion.
	ConfStoreAssignmentPolicy = "spark.sql.storeAssignmentPolicy"
	// ConfAnsiEnabled governs string-parsing casts on the SparkSQL
	// path: when true, invalid input (bad dates, IEEE spellings) errors.
	ConfAnsiEnabled = "spark.sql.ansi.enabled"
	// ConfCharVarcharAsString disables CHAR/VARCHAR length semantics,
	// treating both as plain STRING.
	ConfCharVarcharAsString = "spark.sql.legacy.charVarcharAsString"
	// ConfReadSideCharPadding pads CHAR values to their declared length
	// on read, matching Hive.
	ConfReadSideCharPadding = "spark.sql.readSideCharPadding"
	// ConfSessionTimeZone is the session zone used by the Parquet INT96
	// timestamp writer.
	ConfSessionTimeZone = "spark.sql.session.timeZone"
	// ConfWriteLegacyDecimal makes the DataFrame writer emit the legacy
	// unannotated binary decimal encoding.
	ConfWriteLegacyDecimal = "spark.sql.hive.writeLegacyDecimal"
	// ConfDatetimeRebaseLegacy makes Spark write and read day counts in
	// the hybrid Julian/Gregorian calendar, matching Hive.
	ConfDatetimeRebaseLegacy = "spark.sql.legacy.datetimeRebase"
	// ConfCaseSensitiveInference is Spark's schema-inference mode for
	// Hive tables; it only has an effect for ORC and Parquet.
	ConfCaseSensitiveInference = "spark.sql.hive.caseSensitiveInferenceMode"
	// ConfCaseSensitive controls column-name resolution case rules.
	ConfCaseSensitive = "spark.sql.caseSensitive"
)

// sessionZones maps the named zones the simulator understands to fixed
// UTC offsets in seconds. Real Spark consults the tz database; fixed
// offsets are enough to exhibit the writer/reader asymmetry.
var sessionZones = map[string]int64{
	"UTC":                 0,
	"America/Los_Angeles": -8 * 3600,
	"America/New_York":    -5 * 3600,
	"Europe/Rome":         1 * 3600,
	"Asia/Shanghai":       8 * 3600,
}

// Conf is a session configuration: a string key/value map with typed
// accessors and defaults.
type Conf struct {
	mu     sync.Mutex
	values map[string]string
}

// NewConf returns a configuration holding the simulator defaults.
func NewConf() *Conf {
	return &Conf{values: map[string]string{
		ConfStoreAssignmentPolicy:  "ansi",
		ConfAnsiEnabled:            "true",
		ConfCharVarcharAsString:    "false",
		ConfReadSideCharPadding:    "false",
		ConfSessionTimeZone:        "America/Los_Angeles",
		ConfWriteLegacyDecimal:     "true",
		ConfDatetimeRebaseLegacy:   "false",
		ConfCaseSensitiveInference: "INFER_AND_SAVE",
		ConfCaseSensitive:          "false",
	}}
}

// Set stores a key. Unknown keys are accepted — Spark configurations
// are stringly-typed and silently tolerated, which is itself a CSI
// hazard the management-plane study documents.
func (c *Conf) Set(key, value string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.values[key] = value
}

// Get returns the raw value ("" when unset).
func (c *Conf) Get(key string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.values[key]
}

// Bool interprets a key as a boolean, defaulting to false on junk.
func (c *Conf) Bool(key string) bool {
	v, err := strconv.ParseBool(c.Get(key))
	return err == nil && v
}

// TimeZoneOffsetSeconds resolves the session time zone to a UTC offset.
// Unknown zone names resolve to UTC — silently, as Spark's fallback
// behaviour does.
func (c *Conf) TimeZoneOffsetSeconds() int64 {
	return sessionZones[c.Get(ConfSessionTimeZone)]
}

// Snapshot returns a sorted copy of all settings for logs.
func (c *Conf) Snapshot() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.values))
	for k, v := range c.values {
		out = append(out, fmt.Sprintf("%s=%s", k, v))
	}
	sort.Strings(out)
	return out
}

// Clone returns an independent copy of the configuration.
func (c *Conf) Clone() *Conf {
	c.mu.Lock()
	defer c.mu.Unlock()
	values := make(map[string]string, len(c.values))
	for k, v := range c.values {
		values[k] = v
	}
	return &Conf{values: values}
}
