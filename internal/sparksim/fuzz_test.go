package sparksim_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/hdfssim"
	"repro/internal/hivesim"
	"repro/internal/sparksim"
)

// FuzzSparkSQLParse asserts totality of the SparkSQL front end: any
// query string yields a result or an error, never a panic. Seeds come
// from the §8 corpus literals, so the interesting literal shapes
// (quoted escapes, typed constructors, hex binary) are explored from
// the start. Run `go test -fuzz=FuzzSparkSQLParse` for an extended
// exploration; the seed corpus runs in normal tests.
func FuzzSparkSQLParse(f *testing.F) {
	inputs, err := core.BuildBaseCorpus()
	if err != nil {
		f.Fatal(err)
	}
	for i, in := range inputs {
		if i%5 == 0 {
			f.Add(fmt.Sprintf("CREATE TABLE t (C %s) STORED AS orc", in.Type))
		}
		f.Add(fmt.Sprintf("INSERT INTO t VALUES (%s)", in.Literal))
	}
	f.Add("SELECT * FROM t")
	f.Add("CREATE TABLE t (select INT, SELECT STRING) STORED AS avro")
	f.Add("INSERT INTO t VALUES (")
	f.Add("DROP TABLE t;; SELECT")
	f.Fuzz(func(t *testing.T, query string) {
		fs := hdfssim.New(nil)
		ms := hivesim.NewMetastore()
		s := sparksim.NewSession(fs, ms)
		if _, err := s.SQL("CREATE TABLE t (C INT) STORED AS orc"); err != nil {
			t.Fatalf("fixture table: %v", err)
		}
		_, _ = s.SQL(query) // must not panic
	})
}
