package sparksim

import (
	"testing"

	"repro/internal/serde"
	"repro/internal/sqlval"
)

func TestApplyVersionProfile(t *testing.T) {
	e := newEnv()
	if err := e.spark.ApplyVersionProfile(Version23); err != nil {
		t.Fatal(err)
	}
	if e.spark.Version() != Version23 {
		t.Errorf("version = %q", e.spark.Version())
	}
	if e.spark.Conf().Get(ConfStoreAssignmentPolicy) != "legacy" {
		t.Error("2.3 profile should default to legacy store assignment")
	}
	if err := e.spark.ApplyVersionProfile("9.9"); err == nil {
		t.Error("unknown version should error")
	}
}

func TestVersion23SilentlyCoercesWhere32Errors(t *testing.T) {
	// §5.3: the same statement behaves differently across co-deployed
	// versions — Spark 2.3 coerces silently, 3.2 rejects.
	insert := `INSERT INTO t VALUES (3000000000)`

	e32 := newEnv()
	if err := e32.spark.ApplyVersionProfile(Version32); err != nil {
		t.Fatal(err)
	}
	sqlT(t, e32.spark, `CREATE TABLE t (n INT) STORED AS PARQUET`)
	if _, err := e32.spark.SQL(insert); err == nil {
		t.Error("3.2 should reject the overflow")
	}

	e23 := newEnv()
	if err := e23.spark.ApplyVersionProfile(Version23); err != nil {
		t.Fatal(err)
	}
	sqlT(t, e23.spark, `CREATE TABLE t (n INT) STORED AS PARQUET`)
	if _, err := e23.spark.SQL(insert); err != nil {
		t.Errorf("2.3 should coerce silently: %v", err)
	}
}

func TestVersion23MatchesHiveCalendar(t *testing.T) {
	// Spark 2.3's hybrid calendar agrees with Hive on pre-Gregorian
	// dates — the very agreement 3.x broke.
	e := newEnv()
	if err := e.spark.ApplyVersionProfile(Version23); err != nil {
		t.Fatal(err)
	}
	sqlT(t, e.spark, `CREATE TABLE t (d DATE) STORED AS PARQUET`)
	sqlT(t, e.spark, `INSERT INTO t VALUES (DATE '1500-06-01')`)
	hres := hiveT(t, e.hive, `SELECT * FROM t`)
	if got := sqlval.FormatDate(hres.Rows[0][0].I); got != "1500-06-01" {
		t.Errorf("hive read = %s under the 2.3 profile", got)
	}
}

func TestOrderByAndLimit(t *testing.T) {
	e := newEnv()
	sqlT(t, e.spark, `CREATE TABLE t (id INT, score DOUBLE) STORED AS PARQUET`)
	sqlT(t, e.spark, `INSERT INTO t VALUES (3, 1.0), (1, 3.0), (2, 2.0)`)
	res := sqlT(t, e.spark, `SELECT id FROM t ORDER BY score DESC LIMIT 2`)
	if len(res.Rows) != 2 || res.Rows[0][0].I != 1 || res.Rows[1][0].I != 2 {
		t.Errorf("rows = %v", res.Rows)
	}
	res = sqlT(t, e.spark, `SELECT id FROM t ORDER BY id`)
	if res.Rows[0][0].I != 1 || res.Rows[2][0].I != 3 {
		t.Errorf("asc rows = %v", res.Rows)
	}
	res = sqlT(t, e.spark, `SELECT * FROM t LIMIT 0`)
	if len(res.Rows) != 0 {
		t.Errorf("limit 0 rows = %v", res.Rows)
	}
	// Hive supports the same projection machinery.
	hres := hiveT(t, e.hive, `SELECT id FROM t ORDER BY id DESC LIMIT 1`)
	if len(hres.Rows) != 1 || hres.Rows[0][0].I != 3 {
		t.Errorf("hive rows = %v", hres.Rows)
	}
}

func TestOrderByUnknownColumn(t *testing.T) {
	e := newEnv()
	sqlT(t, e.spark, `CREATE TABLE t (id INT) STORED AS PARQUET`)
	if _, err := e.spark.SQL(`SELECT * FROM t ORDER BY nope`); err == nil {
		t.Error("unknown ORDER BY column should fail")
	}
}

func TestSparkInsertOverwrite(t *testing.T) {
	e := newEnv()
	sqlT(t, e.spark, `CREATE TABLE t (a INT) STORED AS PARQUET`)
	sqlT(t, e.spark, `INSERT INTO t VALUES (1), (2)`)
	sqlT(t, e.spark, `INSERT OVERWRITE TABLE t VALUES (9)`)
	res := sqlT(t, e.spark, `SELECT * FROM t`)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 9 {
		t.Errorf("rows = %v", res.Rows)
	}
	// Overwrites are visible cross-engine.
	hres := hiveT(t, e.hive, `SELECT * FROM t`)
	if len(hres.Rows) != 1 || hres.Rows[0][0].I != 9 {
		t.Errorf("hive rows = %v", hres.Rows)
	}
}

func TestAggregatesThroughSparkSQL(t *testing.T) {
	e := newEnv()
	sqlT(t, e.spark, `CREATE TABLE t (n INT) STORED AS PARQUET`)
	sqlT(t, e.spark, `INSERT INTO t VALUES (1), (2), (3)`)
	res := sqlT(t, e.spark, `SELECT COUNT(*), SUM(n), AVG(n) FROM t`)
	if res.Rows[0][0].I != 3 || res.Rows[0][1].I != 6 || res.Rows[0][2].F != 2 {
		t.Errorf("aggregates = %v", res.Rows[0])
	}
	// Both engines agree on the aggregate of the shared table.
	hres := hiveT(t, e.hive, `SELECT COUNT(*), SUM(n) FROM t`)
	if hres.Rows[0][0].I != 3 || hres.Rows[0][1].I != 6 {
		t.Errorf("hive aggregates = %v", hres.Rows[0])
	}
}

func TestCaseSensitiveResolution(t *testing.T) {
	// With spark.sql.caseSensitive=true, a case-mismatched column no
	// longer resolves against the file and reads back NULL — the knob
	// that turns the silent case-fold into visible data loss.
	e := newEnv()
	// The DataFrame writer records the case-preserved column name in the
	// file; a later re-registration of the table property (e.g. by a
	// Hive-side tool) leaves Spark's catalog lowercase.
	schema := serde.Schema{Columns: []serde.Column{{Name: "MixedCase", Type: sqlval.Int}}}
	df, err := e.spark.CreateDataFrame(schema, []sqlval.Row{{sqlval.IntVal(sqlval.Int, 7)}})
	if err != nil {
		t.Fatal(err)
	}
	if err := df.SaveAsTable("t", "parquet"); err != nil {
		t.Fatal(err)
	}
	table, _ := e.spark.Metastore().GetTable("t")
	e.spark.Metastore().SetProp(table, PropSparkSchema, "mixedcase INT")
	e.spark.Conf().Set(ConfCaseSensitive, "true")
	res := sqlT(t, e.spark, `SELECT * FROM t`)
	if !res.Rows[0][0].Null {
		t.Errorf("case-sensitive resolution should miss: %v", res.Rows[0])
	}
	e.spark.Conf().Set(ConfCaseSensitive, "false")
	res = sqlT(t, e.spark, `SELECT * FROM t`)
	if res.Rows[0][0].I != 7 {
		t.Errorf("case-insensitive resolution should match: %v", res.Rows[0])
	}
}

func TestDataFrameAppendFormatMismatch(t *testing.T) {
	e := newEnv()
	sqlT(t, e.spark, `CREATE TABLE t (a INT) STORED AS ORC`)
	schema := serde.Schema{Columns: []serde.Column{{Name: "a", Type: sqlval.Int}}}
	df, _ := e.spark.CreateDataFrame(schema, []sqlval.Row{{sqlval.IntVal(sqlval.Int, 1)}})
	if err := df.SaveAsTable("t", "parquet"); err == nil {
		t.Error("format mismatch on append should fail")
	}
}

func TestDataFrameArityMismatch(t *testing.T) {
	e := newEnv()
	schema := serde.Schema{Columns: []serde.Column{{Name: "a", Type: sqlval.Int}}}
	if _, err := e.spark.CreateDataFrame(schema, []sqlval.Row{{sqlval.IntVal(sqlval.Int, 1), sqlval.IntVal(sqlval.Int, 2)}}); err == nil {
		t.Error("row wider than schema should fail")
	}
}

func TestSchemaDDLParseErrors(t *testing.T) {
	for _, bad := range []string{"", "noType", "a NOTATYPE", "a INT,,b INT"} {
		if _, err := parseSchemaDDL(bad); err == nil {
			t.Errorf("parseSchemaDDL(%q): expected error", bad)
		}
	}
}

func TestGroupByAgreesAcrossEngines(t *testing.T) {
	e := newEnv()
	sqlT(t, e.spark, `CREATE TABLE sales (region STRING, amount INT) STORED AS PARQUET`)
	sqlT(t, e.spark, `INSERT INTO sales VALUES ('east', 10), ('west', 5), ('east', 20)`)
	sres := sqlT(t, e.spark, `SELECT region, SUM(amount) FROM sales GROUP BY region`)
	hres := hiveT(t, e.hive, `SELECT region, SUM(amount) FROM sales GROUP BY region`)
	if len(sres.Rows) != 2 || len(hres.Rows) != 2 {
		t.Fatalf("groups = %v / %v", sres.Rows, hres.Rows)
	}
	for i := range sres.Rows {
		if sres.Rows[i][0].S != hres.Rows[i][0].S || sres.Rows[i][1].I != hres.Rows[i][1].I {
			t.Errorf("row %d: spark %v vs hive %v", i, sres.Rows[i], hres.Rows[i])
		}
	}
}
