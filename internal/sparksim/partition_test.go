package sparksim

import (
	"strings"
	"testing"

	"repro/internal/hivesim"
	"repro/internal/sqlval"
)

func TestPartitionedTableRoundTripSimpleValues(t *testing.T) {
	e := newEnv()
	sqlT(t, e.spark, `CREATE TABLE logs (msg STRING) PARTITIONED BY (day STRING) STORED AS PARQUET`)
	sqlT(t, e.spark, `INSERT INTO logs VALUES ('a', '2021-06-15'), ('b', '2021-06-16')`)
	res := sqlT(t, e.spark, `SELECT * FROM logs ORDER BY day`)
	if len(res.Rows) != 2 || res.Rows[0][1].S != "2021-06-15" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if len(res.Columns) != 2 || res.Columns[1].Name != "day" {
		t.Errorf("columns = %v", res.Columns)
	}
	// Hive reads the same partitions.
	hres := hiveT(t, e.hive, `SELECT * FROM logs WHERE day = '2021-06-16'`)
	if len(hres.Rows) != 1 || hres.Rows[0][0].S != "b" {
		t.Errorf("hive rows = %v", hres.Rows)
	}
	// Partition directories exist on the warehouse.
	table, _ := e.spark.Metastore().GetTable("logs")
	paths := e.spark.fs.List(table.Location)
	if len(paths) != 2 || !strings.Contains(paths[0], "day=2021-06-15") {
		t.Errorf("paths = %v", paths)
	}
}

func TestPartitionedTypedPartitionColumn(t *testing.T) {
	e := newEnv()
	sqlT(t, e.spark, `CREATE TABLE m (v DOUBLE) PARTITIONED BY (bucket INT) STORED AS ORC`)
	sqlT(t, e.spark, `INSERT INTO m VALUES (1.5, 7)`)
	res := sqlT(t, e.spark, `SELECT * FROM m`)
	if res.Rows[0][1].Type.Kind != sqlval.KindInt || res.Rows[0][1].I != 7 {
		t.Errorf("partition value = %v", res.Rows[0][1])
	}
	hres := hiveT(t, e.hive, `SELECT * FROM m`)
	if hres.Rows[0][1].I != 7 {
		t.Errorf("hive partition value = %v", hres.Rows[0][1])
	}
}

func TestPartitionEscapingDivergesAcrossEngines(t *testing.T) {
	// Candidate NEW discrepancy (the "developing a more general tool"
	// direction of §8): Hive percent-encodes every special byte in a
	// partition value, Spark only the path-critical ones. A value with a
	// space written by Hive comes back mangled through Spark's reader.
	e := newEnv()
	hiveT(t, e.hive, `CREATE TABLE ev (n INT) PARTITIONED BY (tag STRING) STORED AS ORC`)
	hiveT(t, e.hive, `INSERT INTO ev VALUES (1, 'big sale')`)

	hres := hiveT(t, e.hive, `SELECT * FROM ev`)
	if hres.Rows[0][1].S != "big sale" {
		t.Fatalf("hive round trip = %q", hres.Rows[0][1].S)
	}
	sres := sqlT(t, e.spark, `SELECT * FROM ev`)
	if sres.Rows[0][1].S != "big%20sale" {
		t.Errorf("spark read of hive partition = %q, expected the raw escaped segment", sres.Rows[0][1].S)
	}

	// The reverse direction: Spark writes the space raw; Hive decodes
	// nothing (no %XX present) and the engines agree by accident.
	sqlT(t, e.spark, `CREATE TABLE ev2 (n INT) PARTITIONED BY (tag STRING) STORED AS ORC`)
	sqlT(t, e.spark, `INSERT INTO ev2 VALUES (1, 'big sale')`)
	if got := sqlT(t, e.spark, `SELECT * FROM ev2`).Rows[0][1].S; got != "big sale" {
		t.Errorf("spark round trip = %q", got)
	}
	if got := hiveT(t, e.hive, `SELECT * FROM ev2`).Rows[0][1].S; got != "big sale" {
		t.Errorf("hive read of spark partition = %q", got)
	}
}

func TestPartitionNullValueUsesDefaultPartition(t *testing.T) {
	e := newEnv()
	hiveT(t, e.hive, `CREATE TABLE ev (n INT) PARTITIONED BY (tag STRING) STORED AS ORC`)
	hiveT(t, e.hive, `INSERT INTO ev VALUES (1, NULL)`)
	table, _ := e.hive.Metastore().GetTable("ev")
	paths := e.hive.FileSystem().List(table.Location)
	if len(paths) != 1 || !strings.Contains(paths[0], "__HIVE_DEFAULT_PARTITION__") {
		t.Fatalf("paths = %v", paths)
	}
	hres := hiveT(t, e.hive, `SELECT * FROM ev`)
	if !hres.Rows[0][1].Null {
		t.Errorf("null partition = %v", hres.Rows[0][1])
	}
}

func TestPartitionEscapeHelpers(t *testing.T) {
	cases := map[string]string{
		"plain":    "plain",
		"a b":      "a%20b",
		"a/b":      "a%2Fb",
		"a=b":      "a%3Db",
		"100%":     "100%25",
		"ümlaut":   "%C3%BCmlaut",
		"under_ok": "under_ok",
	}
	for in, want := range cases {
		got := hivesim.EscapePartitionValue(in)
		if got != want {
			t.Errorf("hive escape(%q) = %q, want %q", in, got, want)
		}
		if back := hivesim.UnescapePartitionValue(got); back != in {
			t.Errorf("hive unescape(%q) = %q, want %q", got, back, in)
		}
	}
	// Malformed sequences stay literal.
	if got := hivesim.UnescapePartitionValue("50%x1"); got != "50%x1" {
		t.Errorf("malformed = %q", got)
	}
	// Spark escapes only the path-critical characters.
	if got := sparkEscapePartitionValue("a b/c=d%e"); got != "a b%2Fc%3Dd%25e" {
		t.Errorf("spark escape = %q", got)
	}
	if got := sparkUnescapePartitionValue("a b%2Fc%3Dd%25e"); got != "a b/c=d%e" {
		t.Errorf("spark unescape = %q", got)
	}
	if got := sparkUnescapePartitionValue("a%20b"); got != "a%20b" {
		t.Errorf("spark should not decode %%20: %q", got)
	}
}

func TestPartitionedInsertArity(t *testing.T) {
	e := newEnv()
	sqlT(t, e.spark, `CREATE TABLE p (a INT) PARTITIONED BY (b STRING) STORED AS PARQUET`)
	if _, err := e.spark.SQL(`INSERT INTO p VALUES (1)`); err == nil {
		t.Error("missing partition value should fail")
	}
}
