package sparksim

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/csi"
	"repro/internal/hdfssim"
	"repro/internal/hivesim"
	"repro/internal/obs"
	"repro/internal/serde"
	"repro/internal/sqlval"
)

// sparkEscapePartitionValue is Spark's partition-path escaping: only
// the path-critical characters are encoded, unlike Hive's exhaustive
// FileUtils escaping — values with spaces or other specials land in
// differently-spelled directories, a live candidate discrepancy.
func sparkEscapePartitionValue(v string) string {
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '/', '=', '%':
			fmt.Fprintf(&b, "%%%02X", c)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// sparkUnescapePartitionValue: Spark's reader takes the directory
// segment as-is for the characters its writer leaves raw, decoding only
// the three it escapes.
func sparkUnescapePartitionValue(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '%' && i+2 < len(s) {
			seq := s[i+1 : i+3]
			switch seq {
			case "2F", "2f":
				b.WriteByte('/')
				i += 2
				continue
			case "3D", "3d":
				b.WriteByte('=')
				i += 2
				continue
			case "25":
				b.WriteByte('%')
				i += 2
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// truncate removes every part file of the table (INSERT OVERWRITE).
func (s *Session) truncate(table *hivesim.Table) error {
	for _, path := range s.fs.List(table.Location) {
		if err := s.fs.Delete(path); err != nil {
			return err
		}
	}
	return nil
}

// writeRows appends rows to the table through Spark's writer path.
// fileSchema is the schema the file is written under: the metastore
// schema for SparkSQL inserts, the case-preserving Spark schema for
// DataFrame saves. legacyDecimal selects the DataFrame writer's binary
// decimal encoding.
func (s *Session) writeRows(sp *obs.Span, table *hivesim.Table, fileSchema serde.Schema, rows []sqlval.Row, legacyDecimal bool) error {
	if err := s.checkAvro(table.Format); err != nil {
		return err
	}
	meta := map[string]string{
		serde.MetaWriterEngine: "spark",
		serde.MetaSparkSchema:  encodeSchemaDDL(fileSchema),
	}
	tzOffset := int64(0)
	if table.Format == "parquet" {
		// Spark's INT96 writer stores timestamps adjusted out of the
		// session zone and records the zone in writer metadata; readers
		// that ignore the metadata (Hive) see shifted values.
		tzOffset = s.conf.TimeZoneOffsetSeconds()
		meta[serde.MetaWriterTimezone] = strconv.FormatInt(tzOffset, 10)
	}
	writeTransform := func(v sqlval.Value) sqlval.Value {
		if s.conf.Bool(ConfDatetimeRebaseLegacy) && v.Type.Kind == sqlval.KindDate {
			v.I = sqlval.RebaseGregorianToHybrid(v.I)
		}
		if tzOffset != 0 && v.Type.Kind == sqlval.KindTimestamp {
			v.I -= tzOffset * sqlval.MicrosPerSecond
		}
		return v
	}

	outSchema := serde.Schema{Columns: append([]serde.Column(nil), fileSchema.Columns...)}
	useLegacyDecimal := legacyDecimal && s.conf.Bool(ConfWriteLegacyDecimal)
	legacyCols := map[int]bool{}
	if useLegacyDecimal {
		for i, c := range outSchema.Columns {
			if c.Type.Kind == sqlval.KindDecimal {
				outSchema.Columns[i] = serde.Column{Name: c.Name, Type: sqlval.Binary}
				legacyCols[i] = true
			}
		}
	}

	nData := len(outSchema.Columns)
	groups := map[string][]sqlval.Row{}
	var order []string
	for _, row := range rows {
		if len(row) != nData+len(table.PartitionCols) {
			return fmt.Errorf("spark: row has %d values, schema has %d columns", len(row), nData+len(table.PartitionCols))
		}
		dir := ""
		if len(table.PartitionCols) > 0 {
			var err error
			dir, err = hivesim.PartitionDir(table.PartitionCols, row[nData:], sparkEscapePartitionValue)
			if err != nil {
				return err
			}
		}
		out := make(sqlval.Row, nData)
		for i := 0; i < nData; i++ {
			v := row[i]
			if legacyCols[i] {
				if v.Null {
					out[i] = sqlval.NullOf(sqlval.Binary)
				} else {
					out[i] = sqlval.BinaryVal(encodeLegacyDecimal(v.D))
				}
				continue
			}
			out[i] = sqlval.TransformLeaves(v, writeTransform)
		}
		if _, ok := groups[dir]; !ok {
			order = append(order, dir)
		}
		groups[dir] = append(groups[dir], out)
	}

	format, err := serde.ByName(table.Format) // Spark's ORC writer keeps real names
	if err != nil {
		return err
	}
	for _, dir := range order {
		data, err := format.Encode(outSchema, meta, groups[dir])
		if sp != nil {
			sp.Child(csi.SerDe, csi.DataPlane, table.Format+"/encode").
				Set("rows", strconv.Itoa(len(groups[dir]))).Fail(err).End()
		}
		if err != nil {
			return err
		}
		path := s.ms.NextPartIn(table, dir)
		err = s.fs.Write(path, data, hdfssim.WriteOptions{Overwrite: true})
		if sp != nil {
			sp.Child(csi.HDFS, csi.DataPlane, "warehouse/write").
				Set("path", path).Fail(err).End()
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// readTable scans the table's part files and converts them to the given
// catalog schema. In strict mode the Avro deserializer requires the
// file schema to reconcile exactly (SPARK-39075); lenient mode is the
// Hive-schema fallback path.
func (s *Session) readTable(sp *obs.Span, table *hivesim.Table, schema serde.Schema, strict bool) ([]sqlval.Row, error) {
	if err := s.checkAvro(table.Format); err != nil {
		return nil, err
	}
	format, err := serde.ByName(table.Format)
	if err != nil {
		return nil, err
	}
	var out []sqlval.Row
	for _, path := range s.fs.List(table.Location) {
		data, err := s.fs.Read(path)
		if sp != nil {
			sp.Child(csi.HDFS, csi.DataPlane, "warehouse/read").
				Set("path", path).Fail(err).End()
		}
		if err != nil {
			return nil, err
		}
		// One SerDe span covers the decode and the schema conversion of
		// the file's rows: a reconciliation failure (SPARK-39075) is a
		// SerDe-boundary failure.
		var dec *obs.Span
		if sp != nil {
			dec = sp.Child(csi.SerDe, csi.DataPlane, table.Format+"/decode")
		}
		file, err := format.Decode(data)
		if err != nil {
			dec.Fail(err).End()
			return nil, err
		}
		partVals, err := hivesim.ParsePartitionValues(table, path, sparkUnescapePartitionValue, sqlval.CastLegacy)
		if err != nil {
			dec.Fail(err).End()
			return nil, err
		}
		resolve := s.columnResolver(file.Schema, schema.Columns)
		readTransform := s.readTransform(table.Format, file.Meta)
		for _, fileRow := range file.Rows {
			row := make(sqlval.Row, len(schema.Columns), len(schema.Columns)+len(partVals))
			for i, col := range schema.Columns {
				idx := resolve[i]
				if idx < 0 {
					row[i] = sqlval.NullOf(col.Type)
					continue
				}
				v, err := s.convertRead(table, col, file.Schema.Columns[idx].Type, fileRow[idx], strict, readTransform)
				if err != nil {
					dec.Fail(err).End()
					return nil, err
				}
				row[i] = v
			}
			row = append(row, partVals.Clone()...)
			out = append(out, row)
		}
		dec.End()
	}
	return out, nil
}

// readTransform builds the per-leaf reinterpretation for a file:
// time-zone restoration using the writer metadata, and hybrid-calendar
// reading when the legacy rebase config is on.
func (s *Session) readTransform(formatName string, meta map[string]string) func(sqlval.Value) sqlval.Value {
	tzOffset := int64(0)
	if formatName == "parquet" {
		if raw, ok := meta[serde.MetaWriterTimezone]; ok {
			if o, err := strconv.ParseInt(raw, 10, 64); err == nil {
				tzOffset = o
			}
		}
	}
	rebase := s.conf.Bool(ConfDatetimeRebaseLegacy)
	return func(v sqlval.Value) sqlval.Value {
		if v.Type.Kind == sqlval.KindTimestamp && tzOffset != 0 {
			v.I += tzOffset * sqlval.MicrosPerSecond
		}
		if v.Type.Kind == sqlval.KindDate && rebase {
			v.I = sqlval.RebaseHybridToGregorian(v.I)
		}
		return v
	}
}

func (s *Session) convertRead(table *hivesim.Table, col serde.Column, fileType sqlval.Type, v sqlval.Value,
	strict bool, transform func(sqlval.Value) sqlval.Value) (sqlval.Value, error) {
	// Spark decodes its own legacy binary decimals on every path.
	if fileType.Kind == sqlval.KindBinary && col.Type.Kind == sqlval.KindDecimal {
		if v.Null {
			return sqlval.NullOf(col.Type), nil
		}
		d, err := decodeLegacyDecimal(v.Bytes)
		if err != nil {
			return sqlval.Value{}, err
		}
		out, cerr := sqlval.Cast(sqlval.Value{Type: sqlval.DecimalType(d.Precision(), d.Scale), D: d}, col.Type, sqlval.CastLegacy)
		if cerr != nil {
			return sqlval.Value{}, cerr
		}
		return out, nil
	}
	if strict && table.Format == "avro" {
		if err := avroReconcile(table.Name, col.Name, fileType, col.Type); err != nil {
			return sqlval.Value{}, err
		}
	}
	v = sqlval.TransformLeaves(v, transform)
	out, _ := sqlval.Cast(v, col.Type, sqlval.CastLegacy)
	// Spark does not pad CHAR on the read side unless configured to
	// (SPARK-40616): strip the stored pad.
	if out.Type.Kind == sqlval.KindChar && !out.Null && !s.conf.Bool(ConfReadSideCharPadding) {
		out.S = strings.TrimRight(out.S, " ")
	}
	return out, nil
}

// avroReconcile implements the strict Avro schema reconciliation of
// Spark's DataFrame reader: only Avro's documented promotions are
// accepted, so an INT file column cannot be read back as the BYTE or
// SHORT the catalog declares (SPARK-39075).
func avroReconcile(tableName, colName string, file, catalog sqlval.Type) error {
	mismatch := func() error {
		return &IncompatibleSchemaError{Table: tableName, Column: colName, FileType: file, CatalogType: catalog}
	}
	switch catalog.Kind {
	case sqlval.KindTinyInt, sqlval.KindSmallInt:
		// Avro has no 8/16-bit integers; the deserializer misses the
		// INT-to-BYTE/SHORT case and throws.
		return mismatch()
	case sqlval.KindBigInt:
		if file.Kind == sqlval.KindInt || file.Kind == sqlval.KindBigInt {
			return nil
		}
		return mismatch()
	case sqlval.KindDouble:
		if file.Kind == sqlval.KindFloat || file.Kind == sqlval.KindDouble {
			return nil
		}
		return mismatch()
	case sqlval.KindString, sqlval.KindChar, sqlval.KindVarchar:
		if file.IsCharacter() {
			return nil
		}
		return mismatch()
	case sqlval.KindArray:
		if file.Kind != sqlval.KindArray {
			return mismatch()
		}
		return avroReconcile(tableName, colName, *file.Elem, *catalog.Elem)
	case sqlval.KindMap:
		if file.Kind != sqlval.KindMap {
			return mismatch()
		}
		return avroReconcile(tableName, colName, *file.Value, *catalog.Value)
	case sqlval.KindStruct:
		if file.Kind != sqlval.KindStruct || len(file.Fields) != len(catalog.Fields) {
			return mismatch()
		}
		for i := range catalog.Fields {
			if err := avroReconcile(tableName, colName, file.Fields[i].Type, catalog.Fields[i].Type); err != nil {
				return err
			}
		}
		return nil
	default:
		if file.Kind == catalog.Kind {
			return nil
		}
		return mismatch()
	}
}

// columnResolver maps catalog columns to file column indices: by
// position for Hive's positional ORC names, otherwise by name —
// case-insensitively unless spark.sql.caseSensitive is set.
func (s *Session) columnResolver(file serde.Schema, target []serde.Column) []int {
	positional := len(file.Columns) > 0
	for i, c := range file.Columns {
		if c.Name != fmt.Sprintf("_col%d", i) {
			positional = false
			break
		}
	}
	caseSensitive := s.conf.Bool(ConfCaseSensitive)
	out := make([]int, len(target))
	for i := range target {
		out[i] = -1
		if positional {
			if i < len(file.Columns) {
				out[i] = i
			}
			continue
		}
		for j, fc := range file.Columns {
			if fc.Name == target[i].Name || (!caseSensitive && strings.EqualFold(fc.Name, target[i].Name)) {
				out[i] = j
				break
			}
		}
	}
	return out
}
