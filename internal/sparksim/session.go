package sparksim

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/csi"
	"repro/internal/hdfssim"
	"repro/internal/hivesim"
	"repro/internal/obs"
	"repro/internal/serde"
	"repro/internal/sqlval"
)

// PropSparkSchema is the table property under which Spark persists its
// case-preserving, original-typed schema. Hive ignores it.
const PropSparkSchema = "spark.sql.sources.schema"

// Result is the outcome of a SparkSQL statement or DataFrame action.
type Result struct {
	Columns  []serde.Column
	Rows     []sqlval.Row
	Warnings []string
}

// IncompatibleSchemaError is Spark's Avro deserializer failure when the
// file schema cannot be reconciled with the catalog schema — the
// SPARK-39075 error.
type IncompatibleSchemaError struct {
	Table       string
	Column      string
	FileType    sqlval.Type
	CatalogType sqlval.Type
}

// Error implements the error interface.
func (e *IncompatibleSchemaError) Error() string {
	return fmt.Sprintf("spark: IncompatibleSchemaException: cannot convert Avro %s to SQL %s for %s.%s",
		e.FileType, e.CatalogType, e.Table, e.Column)
}

// Session is a Spark session bound to a Hive metastore and warehouse
// through the Hive connector.
type Session struct {
	conf   *Conf
	ms     *hivesim.Metastore
	fs     *hdfssim.FileSystem
	tracer *obs.Tracer
}

// NewSession creates a session over the shared metastore and file
// system with default configuration.
func NewSession(fs *hdfssim.FileSystem, ms *hivesim.Metastore) *Session {
	return &Session{conf: NewConf(), ms: ms, fs: fs}
}

// Conf returns the session configuration.
func (s *Session) Conf() *Conf { return s.conf }

// Metastore returns the connected Hive metastore.
func (s *Session) Metastore() *hivesim.Metastore { return s.ms }

// SetTracer attaches an observability tracer. Spans are threaded
// explicitly through the *Span entry points (SQLSpan, SaveAsTableSpan,
// TableSpan), so a session shared by concurrent harness workers stays
// race-free: there is no mutable "current span" on the session.
func (s *Session) SetTracer(tr *obs.Tracer) { s.tracer = tr }

// --- schema DDL property encoding ------------------------------------

// encodeSchemaDDL renders a schema as "name TYPE, name TYPE".
func encodeSchemaDDL(schema serde.Schema) string {
	parts := make([]string, len(schema.Columns))
	for i, c := range schema.Columns {
		parts[i] = c.Name + " " + c.Type.String()
	}
	return strings.Join(parts, ", ")
}

// parseSchemaDDL is the inverse of encodeSchemaDDL, splitting on
// top-level commas only.
func parseSchemaDDL(ddl string) (serde.Schema, error) {
	var schema serde.Schema
	depth := 0
	start := 0
	flush := func(part string) error {
		part = strings.TrimSpace(part)
		if part == "" {
			return fmt.Errorf("spark: empty column in schema DDL %q", ddl)
		}
		sp := strings.IndexByte(part, ' ')
		if sp < 0 {
			return fmt.Errorf("spark: malformed column %q in schema DDL", part)
		}
		typ, err := sqlval.ParseType(part[sp+1:])
		if err != nil {
			return err
		}
		schema.Columns = append(schema.Columns, serde.Column{Name: part[:sp], Type: typ})
		return nil
	}
	for i := 0; i < len(ddl); i++ {
		switch ddl[i] {
		case '<', '(':
			depth++
		case '>', ')':
			depth--
		case ',':
			if depth == 0 {
				if err := flush(ddl[start:i]); err != nil {
					return serde.Schema{}, err
				}
				start = i + 1
			}
		}
	}
	if err := flush(ddl[start:]); err != nil {
		return serde.Schema{}, err
	}
	return schema, nil
}

// resolveSchema returns the schema Spark reads the table under: the
// persisted case-preserving Spark schema when present, otherwise the
// lowercase Hive metastore schema (the fallback behind "not case
// preserving").
func (s *Session) resolveSchema(table *hivesim.Table) (schema serde.Schema, fromProps bool, err error) {
	if ddl := s.ms.Prop(table, PropSparkSchema); ddl != "" {
		schema, err := parseSchemaDDL(ddl)
		if err != nil {
			return serde.Schema{}, false, err
		}
		return schema, true, nil
	}
	return table.Schema(), false, nil
}

// applyCharVarcharAsString rewrites CHAR/VARCHAR columns to STRING when
// spark.sql.legacy.charVarcharAsString is set — the config's documented
// effect of dropping length semantics entirely.
func (s *Session) applyCharVarcharAsString(cols []serde.Column) []serde.Column {
	if !s.conf.Bool(ConfCharVarcharAsString) {
		return cols
	}
	out := make([]serde.Column, len(cols))
	for i, c := range cols {
		out[i] = serde.Column{Name: c.Name, Type: stripCharVarchar(c.Type)}
	}
	return out
}

func stripCharVarchar(t sqlval.Type) sqlval.Type {
	switch t.Kind {
	case sqlval.KindChar, sqlval.KindVarchar:
		return sqlval.String
	case sqlval.KindArray:
		return sqlval.ArrayType(stripCharVarchar(*t.Elem))
	case sqlval.KindMap:
		return sqlval.MapType(stripCharVarchar(*t.Key), stripCharVarchar(*t.Value))
	case sqlval.KindStruct:
		fields := make([]sqlval.Field, len(t.Fields))
		for i, f := range t.Fields {
			fields[i] = sqlval.Field{Name: f.Name, Type: stripCharVarchar(f.Type)}
		}
		return sqlval.StructType(fields...)
	default:
		return t
	}
}

// createTable registers a table through the Hive connector. Hive-style
// creation (SparkSQL STORED AS) persists the Spark schema only for ORC
// and Parquet — schema inference "only works with ORC and Parquet" —
// while DataFrame saveAsTable persists it for every format.
func (s *Session) createTable(sp *obs.Span, name string, cols, partCols []serde.Column, format string, datasource bool) (*hivesim.Table, error) {
	if _, err := serde.ByName(format); err != nil {
		return nil, err
	}
	if err := s.checkAvro(format); err != nil {
		return nil, err
	}
	cols = s.applyCharVarcharAsString(cols)
	msCols := cols
	if format == "avro" {
		// The connector delegates schema derivation to Hive's Avro SerDe.
		msCols = hivesim.AvroMetastoreColumns(cols)
	}
	props := map[string]string{}
	if datasource || format != "avro" {
		props[PropSparkSchema] = encodeSchemaDDL(serde.Schema{Columns: cols})
	}
	t, err := s.ms.CreateTablePartitioned(name, msCols, partCols, format, props)
	sp.Child(csi.Hive, csi.DataPlane, "metastore/create-table").
		Set("table", name).Set("format", format).Fail(err).End()
	return t, err
}

// --- legacy binary decimal encoding -----------------------------------

// encodeLegacyDecimal is Spark's unannotated binary decimal layout.
func encodeLegacyDecimal(d sqlval.Decimal) []byte {
	return []byte(strconv.FormatInt(d.Unscaled, 10) + ":" + strconv.Itoa(d.Scale))
}

// decodeLegacyDecimal parses the layout back; only Spark understands it.
func decodeLegacyDecimal(b []byte) (sqlval.Decimal, error) {
	parts := strings.SplitN(string(b), ":", 2)
	if len(parts) != 2 {
		return sqlval.Decimal{}, fmt.Errorf("spark: malformed legacy decimal %q", b)
	}
	u, err1 := strconv.ParseInt(parts[0], 10, 64)
	sc, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return sqlval.Decimal{}, fmt.Errorf("spark: malformed legacy decimal %q", b)
	}
	return sqlval.Decimal{Unscaled: u, Scale: sc}, nil
}
