package sparksim

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/hdfssim"
	"repro/internal/hivesim"
	"repro/internal/serde"
	"repro/internal/sqlval"
)

// env is a co-deployment: one warehouse, one metastore, one Spark
// session and one Hive engine.
type env struct {
	spark *Session
	hive  *hivesim.Hive
}

func newEnv() *env {
	fs := hdfssim.New(nil)
	ms := hivesim.NewMetastore()
	return &env{spark: NewSession(fs, ms), hive: hivesim.New(fs, ms)}
}

func sqlT(t *testing.T, s *Session, q string) *Result {
	t.Helper()
	res, err := s.SQL(q)
	if err != nil {
		t.Fatalf("SQL(%q): %v", q, err)
	}
	return res
}

func hiveT(t *testing.T, h *hivesim.Hive, q string) *hivesim.Result {
	t.Helper()
	res, err := h.Execute(q)
	if err != nil {
		t.Fatalf("hive(%q): %v", q, err)
	}
	return res
}

func TestSparkSQLRoundTrip(t *testing.T) {
	e := newEnv()
	sqlT(t, e.spark, `CREATE TABLE t (id INT, name STRING) STORED AS PARQUET`)
	sqlT(t, e.spark, `INSERT INTO t VALUES (1, 'a'), (2, 'b')`)
	res := sqlT(t, e.spark, `SELECT * FROM t`)
	if len(res.Rows) != 2 || res.Rows[1][1].S != "b" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if len(res.Warnings) != 0 {
		t.Errorf("warnings = %v", res.Warnings)
	}
}

func TestSchemaDDLRoundTrip(t *testing.T) {
	schema := serde.Schema{Columns: []serde.Column{
		{Name: "Id", Type: sqlval.Int},
		{Name: "Attrs", Type: sqlval.MapType(sqlval.String, sqlval.DecimalType(5, 2))},
		{Name: "S", Type: sqlval.StructType(sqlval.Field{Name: "x", Type: sqlval.Int})},
	}}
	parsed, err := parseSchemaDDL(encodeSchemaDDL(schema))
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Equal(schema) {
		t.Errorf("round trip = %v, want %v", parsed, schema)
	}
}

// --- Discrepancy 1: SPARK-39075 ---------------------------------------

func TestAvroDataFrameCannotReadWhatItWrote(t *testing.T) {
	e := newEnv()
	schema := serde.Schema{Columns: []serde.Column{{Name: "B", Type: sqlval.TinyInt}}}
	df, err := e.spark.CreateDataFrame(schema, []sqlval.Row{{sqlval.IntVal(sqlval.TinyInt, 5)}})
	if err != nil {
		t.Fatal(err)
	}
	if err := df.SaveAsTable("t", "avro"); err != nil {
		t.Fatal(err)
	}
	_, err = e.spark.Table("t")
	var ise *IncompatibleSchemaError
	if !errors.As(err, &ise) {
		t.Fatalf("DataFrame read err = %v, want IncompatibleSchemaException", err)
	}
	// SparkSQL survives via the Hive-schema fallback, returning INT.
	res, err := e.spark.SQL(`SELECT * FROM t`)
	if err != nil {
		t.Fatalf("SparkSQL read: %v", err)
	}
	if res.Rows[0][0].Type.Kind != sqlval.KindInt || res.Rows[0][0].I != 5 {
		t.Errorf("SparkSQL read = %v", res.Rows[0][0])
	}
	if len(res.Warnings) == 0 || !strings.Contains(res.Warnings[len(res.Warnings)-1], "not case preserving") {
		t.Errorf("warnings = %v", res.Warnings)
	}
	// The same data through ORC round-trips exactly.
	df2, _ := e.spark.CreateDataFrame(schema, []sqlval.Row{{sqlval.IntVal(sqlval.TinyInt, 5)}})
	if err := df2.SaveAsTable("t2", "orc"); err != nil {
		t.Fatal(err)
	}
	res2, err := e.spark.Table("t2")
	if err != nil || res2.Rows[0][0].Type.Kind != sqlval.KindTinyInt {
		t.Errorf("orc read = %v, %v", res2, err)
	}
}

// --- Discrepancy 2: SPARK-39158 ---------------------------------------

func TestLegacyDecimalUnreadableByHive(t *testing.T) {
	e := newEnv()
	d, _ := sqlval.ParseDecimal("12.34")
	schema := serde.Schema{Columns: []serde.Column{{Name: "amt", Type: sqlval.DecimalType(10, 2)}}}
	df, _ := e.spark.CreateDataFrame(schema, []sqlval.Row{{sqlval.DecimalVal(d, 10)}})
	if err := df.SaveAsTable("t", "parquet"); err != nil {
		t.Fatal(err)
	}
	// Spark reads its own encoding back on both interfaces.
	res, err := e.spark.Table("t")
	if err != nil || res.Rows[0][0].D.String() != "12.34" {
		t.Fatalf("DataFrame read = %v, %v", res, err)
	}
	if res, err := e.spark.SQL(`SELECT * FROM t`); err != nil || res.Rows[0][0].D.String() != "12.34" {
		t.Fatalf("SparkSQL read = %v, %v", res, err)
	}
	// Hive throws a SerDeException.
	_, err = e.hive.Execute(`SELECT * FROM t`)
	var sde *hivesim.SerDeError
	if !errors.As(err, &sde) {
		t.Fatalf("hive read err = %v, want SerDeException", err)
	}
	// With the legacy writer disabled, Hive reads the value.
	e.spark.Conf().Set(ConfWriteLegacyDecimal, "false")
	df2, _ := e.spark.CreateDataFrame(schema, []sqlval.Row{{sqlval.DecimalVal(d, 10)}})
	if err := df2.SaveAsTable("t2", "parquet"); err != nil {
		t.Fatal(err)
	}
	res2, err := e.hive.Execute(`SELECT * FROM t2`)
	if err != nil || res2.Rows[0][0].D.String() != "12.34" {
		t.Errorf("hive read fixed = %v, %v", res2, err)
	}
}

// --- Discrepancy 3: HIVE-26533 / SPARK-40409 ---------------------------

func TestSparkSQLAvroWidensAndLosesCase(t *testing.T) {
	e := newEnv()
	sqlT(t, e.spark, `CREATE TABLE t (SmallVal SMALLINT) STORED AS AVRO`)
	sqlT(t, e.spark, `INSERT INTO t VALUES (7)`)
	res := sqlT(t, e.spark, `SELECT * FROM t`)
	if res.Rows[0][0].Type.Kind != sqlval.KindInt {
		t.Errorf("type = %v, want INT", res.Rows[0][0].Type)
	}
	if res.Columns[0].Name != "smallval" {
		t.Errorf("column name = %q, want lowercased", res.Columns[0].Name)
	}
	if len(res.Warnings) == 0 || !strings.Contains(res.Warnings[0], "not case preserving") {
		t.Errorf("warnings = %v", res.Warnings)
	}
	// Parquet preserves both the type and the case.
	sqlT(t, e.spark, `CREATE TABLE t2 (SmallVal SMALLINT) STORED AS PARQUET`)
	sqlT(t, e.spark, `INSERT INTO t2 VALUES (7)`)
	res2 := sqlT(t, e.spark, `SELECT * FROM t2`)
	if res2.Rows[0][0].Type.Kind != sqlval.KindSmallInt || res2.Columns[0].Name != "SmallVal" {
		t.Errorf("parquet = %v / %v", res2.Columns, res2.Rows)
	}
}

// --- Discrepancy 5: SPARK-40439 ----------------------------------------

func TestDecimalExcessPrecisionErrorVsNull(t *testing.T) {
	e := newEnv()
	sqlT(t, e.spark, `CREATE TABLE t (d DECIMAL(5,2)) STORED AS PARQUET`)
	_, err := e.spark.SQL(`INSERT INTO t VALUES (1.23456)`)
	if err == nil || !strings.Contains(err.Error(), "CAST_OVERFLOW") {
		t.Fatalf("SparkSQL insert err = %v", err)
	}
	// DataFrame silently writes NULL.
	d, _ := sqlval.ParseDecimal("1.23456")
	schema := serde.Schema{Columns: []serde.Column{{Name: "d", Type: sqlval.DecimalType(5, 2)}}}
	df, _ := e.spark.CreateDataFrame(schema, []sqlval.Row{{sqlval.DecimalVal(d, 10)}})
	if err := df.SaveAsTable("t2", "parquet"); err != nil {
		t.Fatal(err)
	}
	res, err := e.spark.Table("t2")
	if err != nil || !res.Rows[0][0].Null {
		t.Errorf("DataFrame read = %v, %v", res, err)
	}
	// storeAssignmentPolicy=legacy unifies the behavior.
	e.spark.Conf().Set(ConfStoreAssignmentPolicy, "legacy")
	if _, err := e.spark.SQL(`INSERT INTO t VALUES (1.23456)`); err != nil {
		t.Errorf("legacy insert err = %v", err)
	}
	res2 := sqlT(t, e.spark, `SELECT * FROM t`)
	if !res2.Rows[0][0].Null {
		t.Errorf("legacy insert row = %v", res2.Rows[0])
	}
}

// --- Discrepancy 6/7: timestamps and dates across engines --------------

func TestParquetTimestampShiftsForHive(t *testing.T) {
	e := newEnv()
	sqlT(t, e.spark, `CREATE TABLE t (ts TIMESTAMP) STORED AS PARQUET`)
	sqlT(t, e.spark, `INSERT INTO t VALUES (TIMESTAMP '2021-06-15 12:00:00')`)
	// Spark round-trips exactly.
	res := sqlT(t, e.spark, `SELECT * FROM t`)
	if got := sqlval.FormatTimestamp(res.Rows[0][0].I); got != "2021-06-15 12:00:00" {
		t.Errorf("spark read = %s", got)
	}
	// Hive ignores the writer zone: shifted by 8 hours (LA offset).
	hres := hiveT(t, e.hive, `SELECT * FROM t`)
	if got := sqlval.FormatTimestamp(hres.Rows[0][0].I); got != "2021-06-15 20:00:00" {
		t.Errorf("hive read = %s", got)
	}
	// Setting the session zone to UTC resolves the discrepancy.
	e.spark.Conf().Set(ConfSessionTimeZone, "UTC")
	sqlT(t, e.spark, `CREATE TABLE t2 (ts TIMESTAMP) STORED AS PARQUET`)
	sqlT(t, e.spark, `INSERT INTO t2 VALUES (TIMESTAMP '2021-06-15 12:00:00')`)
	hres2 := hiveT(t, e.hive, `SELECT * FROM t2`)
	if got := sqlval.FormatTimestamp(hres2.Rows[0][0].I); got != "2021-06-15 12:00:00" {
		t.Errorf("hive read with UTC = %s", got)
	}
}

func TestPreGregorianDateShiftsAcrossEngines(t *testing.T) {
	e := newEnv()
	sqlT(t, e.spark, `CREATE TABLE t (d DATE) STORED AS PARQUET`)
	sqlT(t, e.spark, `INSERT INTO t VALUES (DATE '1500-06-01')`)
	res := sqlT(t, e.spark, `SELECT * FROM t`)
	if got := sqlval.FormatDate(res.Rows[0][0].I); got != "1500-06-01" {
		t.Errorf("spark read = %s", got)
	}
	hres := hiveT(t, e.hive, `SELECT * FROM t`)
	if got := sqlval.FormatDate(hres.Rows[0][0].I); got == "1500-06-01" {
		t.Error("hive read should shift a pre-Gregorian date")
	}
	// Legacy rebase aligns Spark with Hive.
	e.spark.Conf().Set(ConfDatetimeRebaseLegacy, "true")
	sqlT(t, e.spark, `CREATE TABLE t2 (d DATE) STORED AS PARQUET`)
	sqlT(t, e.spark, `INSERT INTO t2 VALUES (DATE '1500-06-01')`)
	hres2 := hiveT(t, e.hive, `SELECT * FROM t2`)
	if got := sqlval.FormatDate(hres2.Rows[0][0].I); got != "1500-06-01" {
		t.Errorf("hive read with rebase = %s", got)
	}
}

// --- Discrepancy 8: SPARK-40616 (CHAR padding) --------------------------

func TestCharPaddingAsymmetry(t *testing.T) {
	e := newEnv()
	sqlT(t, e.spark, `CREATE TABLE t (c CHAR(4)) STORED AS PARQUET`)
	sqlT(t, e.spark, `INSERT INTO t VALUES ('ab')`)
	res := sqlT(t, e.spark, `SELECT * FROM t`)
	if res.Rows[0][0].S != "ab" {
		t.Errorf("spark char = %q", res.Rows[0][0].S)
	}
	hres := hiveT(t, e.hive, `SELECT * FROM t`)
	if hres.Rows[0][0].S != "ab  " {
		t.Errorf("hive char = %q", hres.Rows[0][0].S)
	}
	e.spark.Conf().Set(ConfReadSideCharPadding, "true")
	res2 := sqlT(t, e.spark, `SELECT * FROM t`)
	if res2.Rows[0][0].S != "ab  " {
		t.Errorf("padded spark char = %q", res2.Rows[0][0].S)
	}
}

// --- Discrepancies 9-12: inconsistent insert error behaviour ------------

func TestInvalidInputErrorVsSilentNull(t *testing.T) {
	e := newEnv()
	sqlT(t, e.spark, `CREATE TABLE f (x FLOAT) STORED AS PARQUET`)
	if _, err := e.spark.SQL(`INSERT INTO f VALUES ('NaN')`); err == nil {
		t.Error("SparkSQL should reject 'NaN'")
	}
	schema := serde.Schema{Columns: []serde.Column{{Name: "x", Type: sqlval.Float}}}
	df, _ := e.spark.CreateDataFrame(schema, []sqlval.Row{{sqlval.StringVal("NaN")}})
	if err := df.SaveAsTable("f", "parquet"); err != nil {
		t.Fatal(err)
	}
	res, err := e.spark.Table("f")
	if err != nil || !res.Rows[0][0].IsNaN() {
		t.Errorf("DataFrame NaN = %v, %v", res, err)
	}
	// ansi.enabled=false unifies.
	e.spark.Conf().Set(ConfAnsiEnabled, "false")
	if _, err := e.spark.SQL(`INSERT INTO f VALUES ('Infinity')`); err != nil {
		t.Errorf("legacy insert err = %v", err)
	}
}

func TestIntegerOverflowErrorVsWrap(t *testing.T) {
	e := newEnv()
	sqlT(t, e.spark, `CREATE TABLE t (n INT) STORED AS PARQUET`)
	if _, err := e.spark.SQL(`INSERT INTO t VALUES (3000000000)`); err == nil {
		t.Error("SparkSQL should reject INT overflow")
	}
	e.spark.Conf().Set(ConfStoreAssignmentPolicy, "legacy")
	if _, err := e.spark.SQL(`INSERT INTO t VALUES (3000000000)`); err != nil {
		t.Errorf("legacy overflow err = %v", err)
	}
}

func TestInvalidDateErrorVsNull(t *testing.T) {
	e := newEnv()
	sqlT(t, e.spark, `CREATE TABLE t (d DATE) STORED AS PARQUET`)
	if _, err := e.spark.SQL(`INSERT INTO t VALUES ('2021-02-30')`); err == nil {
		t.Error("SparkSQL should reject an invalid date")
	}
	schema := serde.Schema{Columns: []serde.Column{{Name: "d", Type: sqlval.Date}}}
	df, _ := e.spark.CreateDataFrame(schema, []sqlval.Row{{sqlval.StringVal("2021-02-30")}})
	if err := df.SaveAsTable("t", "parquet"); err != nil {
		t.Fatal(err)
	}
	res, err := e.spark.Table("t")
	if err != nil || !res.Rows[0][0].Null {
		t.Errorf("DataFrame invalid date = %v, %v", res, err)
	}
}

// --- Discrepancy 13: charVarcharAsString --------------------------------

func TestVarcharOverflowErrorVsTruncate(t *testing.T) {
	e := newEnv()
	sqlT(t, e.spark, `CREATE TABLE t (v VARCHAR(4)) STORED AS PARQUET`)
	if _, err := e.spark.SQL(`INSERT INTO t VALUES ('abcdef')`); err == nil {
		t.Error("SparkSQL should reject VARCHAR overflow")
	}
	schema := serde.Schema{Columns: []serde.Column{{Name: "v", Type: sqlval.VarcharType(4)}}}
	df, _ := e.spark.CreateDataFrame(schema, []sqlval.Row{{sqlval.StringVal("abcdef")}})
	if err := df.SaveAsTable("t", "parquet"); err != nil {
		t.Fatal(err)
	}
	res, err := e.spark.Table("t")
	if err != nil || res.Rows[0][0].S != "abcd" {
		t.Errorf("DataFrame truncate = %v, %v", res, err)
	}
	// charVarcharAsString removes length semantics entirely.
	e.spark.Conf().Set(ConfCharVarcharAsString, "true")
	sqlT(t, e.spark, `CREATE TABLE t2 (v VARCHAR(4)) STORED AS PARQUET`)
	sqlT(t, e.spark, `INSERT INTO t2 VALUES ('abcdef')`)
	res2 := sqlT(t, e.spark, `SELECT * FROM t2`)
	if res2.Rows[0][0].S != "abcdef" {
		t.Errorf("as-string read = %q", res2.Rows[0][0].S)
	}
}

// --- Discrepancy 15: SPARK-40630 (silent invalid boolean) ---------------

func TestInvalidBooleanSilentlyNullOnDataFrame(t *testing.T) {
	e := newEnv()
	schema := serde.Schema{Columns: []serde.Column{{Name: "b", Type: sqlval.Boolean}}}
	df, _ := e.spark.CreateDataFrame(schema, []sqlval.Row{{sqlval.StringVal("yes")}})
	if err := df.SaveAsTable("t", "parquet"); err != nil {
		t.Fatal(err)
	}
	res, err := e.spark.Table("t")
	if err != nil || !res.Rows[0][0].Null {
		t.Errorf("row = %v, %v", res, err)
	}
	// SparkSQL rejects the same value with feedback.
	sqlT(t, e.spark, `CREATE TABLE t2 (b BOOLEAN) STORED AS PARQUET`)
	if _, err := e.spark.SQL(`INSERT INTO t2 VALUES ('yes')`); err == nil {
		t.Error("SparkSQL should reject 'yes'")
	}
}

// --- Cross-engine plumbing ----------------------------------------------

func TestHiveWrittenORCReadableBySpark(t *testing.T) {
	e := newEnv()
	hiveT(t, e.hive, `CREATE TABLE t (id INT, name STRING) STORED AS ORC`)
	hiveT(t, e.hive, `INSERT INTO t VALUES (1, 'x')`)
	res := sqlT(t, e.spark, `SELECT * FROM t`)
	if len(res.Rows) != 1 || res.Rows[0][1].S != "x" {
		t.Errorf("rows = %v", res.Rows)
	}
	dres, err := e.spark.Table("t")
	if err != nil || dres.Rows[0][0].I != 1 {
		t.Errorf("df rows = %v, %v", dres, err)
	}
}

func TestSparkWrittenParquetReadableByHive(t *testing.T) {
	e := newEnv()
	sqlT(t, e.spark, `CREATE TABLE t (id INT, name STRING) STORED AS PARQUET`)
	sqlT(t, e.spark, `INSERT INTO t VALUES (1, 'x')`)
	res := hiveT(t, e.hive, `SELECT * FROM t`)
	if len(res.Rows) != 1 || res.Rows[0][1].S != "x" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestConfUnknownKeysTolerated(t *testing.T) {
	c := NewConf()
	c.Set("spark.sql.nonexistent.flag", "whatever")
	if c.Get("spark.sql.nonexistent.flag") != "whatever" {
		t.Error("unknown keys should be stored")
	}
	if c.Bool("spark.sql.nonexistent.flag") {
		t.Error("junk bool should be false")
	}
	if c.TimeZoneOffsetSeconds() != -8*3600 {
		t.Errorf("default tz offset = %d", c.TimeZoneOffsetSeconds())
	}
	clone := c.Clone()
	clone.Set(ConfAnsiEnabled, "false")
	if !c.Bool(ConfAnsiEnabled) {
		t.Error("clone should be independent")
	}
}
