package sparksim

import (
	"fmt"
	"testing"

	"repro/internal/hdfssim"
	"repro/internal/hivesim"
	"repro/internal/serde"
	"repro/internal/sqlval"
)

// BenchmarkSQLInsertSelect measures a full SparkSQL write/read cycle
// per format — the per-test-case cost of the cross-testing harness.
func BenchmarkSQLInsertSelect(b *testing.B) {
	for _, format := range []string{"orc", "parquet", "avro"} {
		b.Run(format, func(b *testing.B) {
			e := newBenchEnv()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				table := fmt.Sprintf("t_%s_%d", format, i)
				if _, err := e.SQL(fmt.Sprintf("CREATE TABLE %s (Id INT, Name STRING) STORED AS %s", table, format)); err != nil {
					b.Fatal(err)
				}
				if _, err := e.SQL(fmt.Sprintf("INSERT INTO %s VALUES (1, 'x')", table)); err != nil {
					b.Fatal(err)
				}
				if _, err := e.SQL(fmt.Sprintf("SELECT * FROM %s", table)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDataFrameSave measures the DataFrame write path with the
// legacy decimal transformation.
func BenchmarkDataFrameSave(b *testing.B) {
	e := newBenchEnv()
	d, _ := sqlval.ParseDecimal("12.34")
	schema := serde.Schema{Columns: []serde.Column{{Name: "amt", Type: sqlval.DecimalType(10, 2)}}}
	rows := make([]sqlval.Row, 100)
	for i := range rows {
		rows[i] = sqlval.Row{sqlval.DecimalVal(d, 10)}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		df, err := e.CreateDataFrame(schema, rows)
		if err != nil {
			b.Fatal(err)
		}
		if err := df.SaveAsTable(fmt.Sprintf("t_%d", i), "parquet"); err != nil {
			b.Fatal(err)
		}
	}
}

func newBenchEnv() *Session {
	return NewSession(hdfssim.New(nil), hivesim.NewMetastore())
}
