package sparksim

import "fmt"

// Version profiles. The paper's §8.1 methodology deploys two Spark
// versions — 2.3.0 for the Spark↔Hive test plans (the last version
// supporting an external Hive instance) and 3.2.1 for Spark-to-Spark —
// and §5.3 observes that cross-version configuration defaults are
// themselves a CSI hazard: the same deployment behaves differently
// because the versions ship different defaults.
const (
	// Version23 approximates Spark 2.3.0 defaults: legacy store
	// assignment and casts (silent coercion), hybrid-calendar
	// datetimes, and the legacy decimal writer.
	Version23 = "2.3.0"
	// Version32 approximates Spark 3.2.1 defaults: ANSI store
	// assignment, proleptic Gregorian datetimes. This is the
	// simulator's default profile.
	Version32 = "3.2.1"
)

// versionProfiles maps a version to the configuration defaults it
// ships.
var versionProfiles = map[string]map[string]string{
	Version23: {
		ConfStoreAssignmentPolicy: "legacy",
		ConfAnsiEnabled:           "false",
		ConfDatetimeRebaseLegacy:  "true",
		ConfWriteLegacyDecimal:    "true",
		ConfCharVarcharAsString:   "true", // CHAR/VARCHAR were plain strings pre-3.1
	},
	Version32: {
		ConfStoreAssignmentPolicy: "ansi",
		ConfAnsiEnabled:           "true",
		ConfDatetimeRebaseLegacy:  "false",
		ConfWriteLegacyDecimal:    "true",
		ConfCharVarcharAsString:   "false",
	},
}

// Versions lists the supported version profiles.
func Versions() []string { return []string{Version23, Version32} }

// ApplyVersionProfile resets the configuration keys a release ships
// different defaults for. Explicit Set calls afterwards still override,
// exactly as deployment configuration overrides shipped defaults.
func (s *Session) ApplyVersionProfile(version string) error {
	profile, ok := versionProfiles[version]
	if !ok {
		return fmt.Errorf("spark: unknown version %q (have %v)", version, Versions())
	}
	for k, v := range profile {
		s.conf.Set(k, v)
	}
	s.conf.Set("spark.version", version)
	return nil
}

// Version returns the session's version profile name (empty when no
// profile was applied).
func (s *Session) Version() string { return s.conf.Get("spark.version") }

// VersionConf returns a copy of a version profile's configuration
// defaults, suitable for applying as deployment configuration (e.g. to
// a cross-test run). Unknown versions return nil.
func VersionConf(version string) map[string]string {
	profile, ok := versionProfiles[version]
	if !ok {
		return nil
	}
	out := make(map[string]string, len(profile))
	for k, v := range profile {
		out[k] = v
	}
	return out
}
