package sparksim

import (
	"fmt"

	"repro/internal/versions"
)

// Version profiles. The paper's §8.1 methodology deploys two Spark
// versions — 2.3.0 for the Spark↔Hive test plans (the last version
// supporting an external Hive instance) and 3.2.1 for Spark-to-Spark —
// and §5.3 observes that cross-version configuration defaults are
// themselves a CSI hazard: the same deployment behaves differently
// because the versions ship different defaults. The profiles live in
// internal/versions, keyed to the JIRA issues and migration-guide notes
// that changed each behavior; this file binds them to a session.
const (
	// Version23 approximates Spark 2.3.0 defaults: legacy store
	// assignment and casts (silent coercion), hybrid-calendar
	// datetimes, the legacy decimal writer, and no built-in Avro data
	// source (SPARK-24768).
	Version23 = versions.Spark23
	// Version24 approximates Spark 2.4.8: the 2.3 semantics plus the
	// built-in Avro data source added by SPARK-24768.
	Version24 = versions.Spark24
	// Version32 approximates Spark 3.2.1 defaults: ANSI store
	// assignment, proleptic Gregorian datetimes. This is the
	// simulator's default profile.
	Version32 = versions.Spark32
)

// confVersion is the conf key the applied profile is recorded under.
const confVersion = "spark.version"

// Versions lists the supported version profiles.
func Versions() []string { return versions.SparkVersions() }

// ApplyVersionProfile resets the configuration keys a release ships
// different defaults for. Explicit Set calls afterwards still override,
// exactly as deployment configuration overrides shipped defaults.
func (s *Session) ApplyVersionProfile(version string) error {
	profile, ok := versions.GetSparkProfile(version)
	if !ok {
		return fmt.Errorf("spark: unknown version %q (have %v)", version, Versions())
	}
	for k, v := range profile.Conf {
		s.conf.Set(k, v)
	}
	s.conf.Set(confVersion, version)
	return nil
}

// Version returns the session's version profile name (empty when no
// profile was applied).
func (s *Session) Version() string { return s.conf.Get(confVersion) }

// VersionConf returns a copy of a version profile's configuration
// defaults, suitable for applying as deployment configuration (e.g. to
// a cross-test run). Unknown versions return nil.
func VersionConf(version string) map[string]string {
	profile, ok := versions.GetSparkProfile(version)
	if !ok {
		return nil
	}
	out := make(map[string]string, len(profile.Conf))
	for k, v := range profile.Conf {
		out[k] = v
	}
	return out
}

// AvroUnavailableError is the failure of every Avro read or write on a
// Spark build without the built-in Avro data source — the data source
// became built in with Spark 2.4 (SPARK-24768); before that it was an
// external package the modeled deployment does not ship.
type AvroUnavailableError struct {
	Version string
}

// Error implements the error interface, mirroring Spark's
// AnalysisException message for a missing data source.
func (e *AvroUnavailableError) Error() string {
	return fmt.Sprintf("spark: AnalysisException: failed to find data source: avro "+
		"(built in since Spark 2.4, SPARK-24768; spark.version=%s)", e.Version)
}

// checkAvro gates Avro operations on the session's version profile: a
// pre-2.4 profile has no Avro data source at all. Sessions without a
// profile run the baseline (Avro available).
func (s *Session) checkAvro(format string) error {
	if format != "avro" {
		return nil
	}
	v := s.Version()
	if v == "" {
		return nil
	}
	if p, ok := versions.GetSparkProfile(v); ok && !p.BuiltinAvro {
		return &AvroUnavailableError{Version: v}
	}
	return nil
}
