// Package benchrec records and compares benchmark trajectories: a
// schema-versioned JSON snapshot of the framework's throughput and
// allocation behaviour (BENCH_1.json at the repo root), plus the
// comparison gate that fails CI when a candidate build regresses a
// recorded metric beyond tolerance.
//
// Metrics are split into portable and machine-dependent. Allocation
// counts are deterministic for a given toolchain and gate by default;
// throughput and latency depend on the host and are only gated when
// explicitly requested (crossbench -all), so the CI gate stays
// meaningful on shared runners.
package benchrec

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// Schema is the current record schema version. Load rejects records
// from a different schema rather than guessing at field semantics.
const Schema = 1

// Directions for Metric.Better.
const (
	Higher = "higher"
	Lower  = "lower"
)

// Metric is one measured quantity of a benchmark run.
type Metric struct {
	Name  string  `json:"name"`
	Unit  string  `json:"unit"`
	Value float64 `json:"value"`
	// Better says which direction is an improvement: Higher or Lower.
	Better string `json:"better"`
	// Portable marks machine-independent metrics (allocation counts):
	// only these participate in the default CI gate.
	Portable bool `json:"portable,omitempty"`
}

// Record is one benchmark snapshot.
type Record struct {
	Schema    int      `json:"schema"`
	CreatedAt string   `json:"created_at"`
	GoVersion string   `json:"go_version"`
	Metrics   []Metric `json:"metrics"`
}

// Metric returns the named metric, if recorded.
func (r *Record) Metric(name string) (Metric, bool) {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// Validate checks the record's internal consistency.
func (r *Record) Validate() error {
	if r.Schema != Schema {
		return fmt.Errorf("benchrec: record schema %d, this build reads schema %d", r.Schema, Schema)
	}
	seen := map[string]bool{}
	for _, m := range r.Metrics {
		if m.Name == "" {
			return fmt.Errorf("benchrec: metric with empty name")
		}
		if seen[m.Name] {
			return fmt.Errorf("benchrec: duplicate metric %q", m.Name)
		}
		seen[m.Name] = true
		if m.Better != Higher && m.Better != Lower {
			return fmt.Errorf("benchrec: metric %q has better=%q, want %q or %q", m.Name, m.Better, Higher, Lower)
		}
		if math.IsNaN(m.Value) || math.IsInf(m.Value, 0) {
			return fmt.Errorf("benchrec: metric %q has non-finite value", m.Name)
		}
	}
	return nil
}

// Load reads and validates a record file.
func Load(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Record
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchrec: %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// Write validates the record and writes it as indented JSON with a
// trailing newline (stable for version control diffs).
func (r *Record) Write(path string) error {
	if err := r.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Regression is one gate failure: a candidate metric worse than the
// baseline beyond tolerance, or a baseline metric the candidate no
// longer reports.
type Regression struct {
	Name     string
	Unit     string
	Base     float64
	Cand     float64
	Delta    float64 // relative change, signed: (cand-base)/base
	Missing  bool    // the candidate did not report this metric
	Portable bool
}

func (g Regression) String() string {
	if g.Missing {
		return fmt.Sprintf("%s: missing from candidate (baseline %.4g %s)", g.Name, g.Base, g.Unit)
	}
	return fmt.Sprintf("%s: %.4g -> %.4g %s (%+.1f%%)", g.Name, g.Base, g.Cand, g.Unit, g.Delta*100)
}

// Compare gates cand against base: every baseline metric that moved in
// its worse direction by more than tolerance (relative) is returned as
// a regression, as is every baseline metric the candidate dropped.
// Unless all is set, machine-dependent metrics are skipped. Metrics
// only the candidate reports never fail the gate — trajectories are
// allowed to grow.
func Compare(base, cand *Record, tolerance float64, all bool) []Regression {
	var out []Regression
	for _, bm := range base.Metrics {
		if !bm.Portable && !all {
			continue
		}
		cm, ok := cand.Metric(bm.Name)
		if !ok {
			out = append(out, Regression{Name: bm.Name, Unit: bm.Unit, Base: bm.Value, Missing: true, Portable: bm.Portable})
			continue
		}
		var delta float64
		if bm.Value != 0 {
			delta = (cm.Value - bm.Value) / bm.Value
		} else if cm.Value != 0 {
			// From a zero baseline any move is all-or-nothing; the sign
			// of the move decides which direction it counts as.
			delta = math.Copysign(math.Inf(1), cm.Value)
		}
		worse := (bm.Better == Higher && delta < -tolerance) ||
			(bm.Better == Lower && delta > tolerance)
		if worse {
			out = append(out, Regression{
				Name: bm.Name, Unit: bm.Unit,
				Base: bm.Value, Cand: cm.Value, Delta: delta, Portable: bm.Portable,
			})
		}
	}
	return out
}
