package benchrec

import (
	"path/filepath"
	"strings"
	"testing"
)

func record(metrics ...Metric) *Record {
	return &Record{Schema: Schema, CreatedAt: "2026-08-08T00:00:00Z", GoVersion: "go1.24.0", Metrics: metrics}
}

// The acceptance criterion: a synthetic >15% regression on a portable
// metric fails the gate; a move inside tolerance does not.
func TestCompareFlagsRegressionBeyondTolerance(t *testing.T) {
	base := record(Metric{Name: "allocs_per_case", Unit: "allocs", Value: 100, Better: Lower, Portable: true})

	worse := record(Metric{Name: "allocs_per_case", Unit: "allocs", Value: 120, Better: Lower, Portable: true})
	regs := Compare(base, worse, 0.15, false)
	if len(regs) != 1 {
		t.Fatalf("20%% regression produced %d regressions, want 1", len(regs))
	}
	if regs[0].Name != "allocs_per_case" || regs[0].Delta < 0.19 || regs[0].Delta > 0.21 {
		t.Errorf("regression = %+v", regs[0])
	}
	if !strings.Contains(regs[0].String(), "allocs_per_case") {
		t.Errorf("rendering: %s", regs[0])
	}

	within := record(Metric{Name: "allocs_per_case", Unit: "allocs", Value: 114, Better: Lower, Portable: true})
	if regs := Compare(base, within, 0.15, false); len(regs) != 0 {
		t.Errorf("14%% move inside tolerance flagged: %+v", regs)
	}

	improved := record(Metric{Name: "allocs_per_case", Unit: "allocs", Value: 50, Better: Lower, Portable: true})
	if regs := Compare(base, improved, 0.15, false); len(regs) != 0 {
		t.Errorf("improvement flagged as regression: %+v", regs)
	}
}

// Direction matters: for higher-is-better metrics a drop regresses, a
// rise never does.
func TestCompareDirection(t *testing.T) {
	base := record(Metric{Name: "cases_per_sec", Unit: "cases/s", Value: 1000, Better: Higher, Portable: true})
	if regs := Compare(base, record(Metric{Name: "cases_per_sec", Unit: "cases/s", Value: 800, Better: Higher, Portable: true}), 0.15, false); len(regs) != 1 {
		t.Errorf("20%% throughput drop not flagged: %+v", regs)
	}
	if regs := Compare(base, record(Metric{Name: "cases_per_sec", Unit: "cases/s", Value: 5000, Better: Higher, Portable: true}), 0.15, false); len(regs) != 0 {
		t.Errorf("throughput gain flagged: %+v", regs)
	}
}

// Machine-dependent metrics are exempt from the default gate and
// included with all=true — the CI-flake firewall.
func TestCompareMachineMetricsGatedOnlyWithAll(t *testing.T) {
	base := record(Metric{Name: "service_cold_ms", Unit: "ms", Value: 100, Better: Lower})
	cand := record(Metric{Name: "service_cold_ms", Unit: "ms", Value: 500, Better: Lower})
	if regs := Compare(base, cand, 0.15, false); len(regs) != 0 {
		t.Errorf("machine metric gated by default: %+v", regs)
	}
	if regs := Compare(base, cand, 0.15, true); len(regs) != 1 {
		t.Errorf("machine metric not gated under -all: %+v", regs)
	}
}

// A baseline metric the candidate stopped reporting is a regression;
// new candidate-only metrics are not.
func TestCompareMissingAndExtraMetrics(t *testing.T) {
	base := record(Metric{Name: "allocs_per_case", Unit: "allocs", Value: 100, Better: Lower, Portable: true})
	cand := record(Metric{Name: "brand_new", Unit: "x", Value: 1, Better: Higher, Portable: true})
	regs := Compare(base, cand, 0.15, false)
	if len(regs) != 1 || !regs[0].Missing {
		t.Fatalf("dropped metric not flagged: %+v", regs)
	}
	if !strings.Contains(regs[0].String(), "missing") {
		t.Errorf("rendering: %s", regs[0])
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	base := record(Metric{Name: "extra_allocs", Unit: "allocs", Value: 0, Better: Lower, Portable: true})
	if regs := Compare(base, record(Metric{Name: "extra_allocs", Unit: "allocs", Value: 3, Better: Lower, Portable: true}), 0.15, false); len(regs) != 1 {
		t.Errorf("growth from zero not flagged on a lower-is-better metric: %+v", regs)
	}
	if regs := Compare(base, record(Metric{Name: "extra_allocs", Unit: "allocs", Value: 0, Better: Lower, Portable: true}), 0.15, false); len(regs) != 0 {
		t.Errorf("zero -> zero flagged: %+v", regs)
	}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_1.json")
	r := record(
		Metric{Name: "a", Unit: "x", Value: 1.5, Better: Higher, Portable: true},
		Metric{Name: "b", Unit: "y", Value: 2, Better: Lower},
	)
	if err := r.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || len(got.Metrics) != 2 || got.Metrics[0] != r.Metrics[0] {
		t.Errorf("round trip lost data: %+v", got)
	}
	if m, ok := got.Metric("b"); !ok || m.Value != 2 {
		t.Errorf("Metric lookup: %+v %v", m, ok)
	}
}

// Schema and shape violations are load/write errors, not silent
// acceptance — a future schema bump must not reinterpret old files.
func TestValidateRejections(t *testing.T) {
	for name, r := range map[string]*Record{
		"wrong-schema": {Schema: 2, Metrics: []Metric{{Name: "a", Better: Lower}}},
		"bad-better":   record(Metric{Name: "a", Better: "sideways"}),
		"dup-name":     record(Metric{Name: "a", Better: Lower}, Metric{Name: "a", Better: Lower}),
		"empty-name":   record(Metric{Better: Lower}),
	} {
		if err := r.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("loading a missing file succeeded")
	}
}
