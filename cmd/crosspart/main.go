// Command crosspart runs CoFI-style network-partition campaigns over
// the simulated control planes (HDFS, YARN, Kafka, HBase, Flink-on-YARN
// scenarios in internal/partition). Each scenario replays a real
// cross-system interaction failure whose trigger is a partition landing
// inside a state-inconsistency window; the consistency-guided injector
// watches every node's view of the shared state and cuts exactly when
// two nodes first disagree, holding the cut so recovery cannot mask the
// bug.
//
// Usage:
//
//	crosspart [-seed N] [-strategy compare|guided|random|observe|fixed]
//	          [-scenarios a,b] [-trials N] [-hold MS] [-parallel N]
//	          [-plan] [-list] [-trace dir] [-metrics file] [-version]
//
// Everything is deterministic: the random baseline's cut schedule is a
// pure function of (seed, scenario, trial) — print it without running
// anything via -plan — and a campaign's report hash is bit-identical
// across -parallel settings and repeated runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/buildinfo"
	"repro/internal/obs"
	"repro/internal/partition"
)

func main() {
	seed := flag.Uint64("seed", 1, "campaign seed (drives the random baseline's schedules)")
	strategy := flag.String("strategy", "compare", "injection strategy: "+strings.Join(partition.Strategies(), "|"))
	scenarios := flag.String("scenarios", "", "comma-separated scenario names (empty = full registry)")
	trials := flag.Int("trials", 20, "random trials per scenario")
	hold := flag.Int64("hold", 1000, "random-cut hold in virtual ms before healing")
	parallel := flag.Int("parallel", 1, "concurrent campaign units")
	plan := flag.Bool("plan", false, "print the deterministic random-cut schedule and exit (runs nothing)")
	list := flag.Bool("list", false, "list the scenario registry and exit")
	traceDir := flag.String("trace", "", "record causal spans and write them to <dir>/spans.jsonl")
	metricsFile := flag.String("metrics", "", "write Prometheus-text harness metrics to this file (\"-\" for stdout)")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *version {
		fmt.Printf("crosspart %s\n", buildinfo.Get())
		return
	}

	var names []string
	if *scenarios != "" {
		for _, n := range strings.Split(*scenarios, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}

	if *list {
		for _, sc := range partition.Scenarios() {
			fmt.Printf("%s  %-18s %-11s %s  nodes=%s horizon=%dms\n",
				sc.ID, sc.Name, sc.Anchor, sc.Signature,
				strings.Join(sc.Nodes, ","), sc.HorizonMs)
		}
		return
	}

	if *plan {
		cuts, err := partition.PlanRandom(*seed, names, *trials, *hold)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crosspart: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("random schedule seed=%d trials=%d hold=%dms\n", *seed, *trials, *hold)
		for _, c := range cuts {
			fmt.Printf("  %-18s trial %2d: cut {%s<->%s} @%dms heal @%dms\n",
				c.Scenario, c.Trial, c.From, c.To, c.AtMs, c.HealAtMs)
		}
		return
	}

	opts := partition.Options{
		Seed:      *seed,
		Scenarios: names,
		Strategy:  partition.Strategy(*strategy),
		Trials:    *trials,
		HoldMs:    *hold,
		Parallel:  *parallel,
	}
	if *traceDir != "" {
		opts.Tracer = obs.NewTracer(nil)
	}
	if *metricsFile != "" {
		opts.Metrics = obs.NewRegistry()
	}

	res, err := partition.Run(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crosspart: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(res.Render())
	fmt.Printf("\nreport-hash: %s\n", res.Hash())

	if *traceDir != "" {
		if err := writeSpans(opts.Tracer, *traceDir); err != nil {
			fmt.Fprintf(os.Stderr, "crosspart: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d spans to %s\n", opts.Tracer.Len(), filepath.Join(*traceDir, "spans.jsonl"))
	}
	if *metricsFile != "" {
		if err := writeMetrics(opts.Metrics, *metricsFile); err != nil {
			fmt.Fprintf(os.Stderr, "crosspart: writing metrics: %v\n", err)
			os.Exit(1)
		}
	}
}

func writeSpans(tr *obs.Tracer, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "spans.jsonl"))
	if err != nil {
		return err
	}
	defer f.Close()
	return tr.WriteSpans(f)
}

func writeMetrics(reg *obs.Registry, dest string) error {
	if dest == "-" {
		return reg.WritePrometheus(os.Stdout)
	}
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	defer f.Close()
	return reg.WritePrometheus(f)
}
