// Command crossload is the metastable-failure workload engine: a
// deterministic closed-/open-loop load generator (internal/loadgen)
// that sweeps client retry policies against overload curves and
// classifies each cell as stable, recovering, or metastable. The
// headline experiment: on a byte-identical arrival schedule, naive
// retries keep the system collapsed for the full 40 s after a 10 s
// spike ends, while capped backoff + jitter + a circuit breaker
// recovers — no code defect anywhere, just the interaction.
//
// Usage:
//
//	crossload [-seed N] [-policy a,b] [-peak 350,800,1600] [-admission]
//	          [-parallel N] [-trace dir] [-metrics file]        phase sweep (default)
//	crossload -curve spike|ramp|diurnal|constant [-policy p]
//	          [-base RPS] [-peak RPS] [-seed N]                  one cell
//	crossload -storm N [-policy p] [-seed N]                     wall-clock storm
//	          against an in-process crossd scheduler
//	crossload -list                                              registries
//	crossload -version                                           build info
//
// The phase sweep and single-cell modes run entirely in virtual time:
// reports are bit-identical across -parallel settings, platforms, and
// repeated runs (CI pins the seed-42 report). The -storm mode drives a
// real serve.Scheduler wall-clock through the same retry policies, so
// its totals are exact but its rejection split is timing-dependent.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/inject"
	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	seed := flag.Uint64("seed", 42, "sweep seed (drives arrival dither and jitter)")
	policy := flag.String("policy", "", "comma-separated retry-policy rows (empty = all)")
	peaks := flag.String("peak", "", "comma-separated spike peaks in rps (empty = 350,800,1600)")
	admission := flag.Bool("admission", false, "enable server-side token-bucket admission in every cell")
	parallel := flag.Int("parallel", 1, "concurrent cells (reports are bit-identical regardless)")
	curve := flag.String("curve", "", "single-cell mode: run one cell on this curve instead of the sweep")
	base := flag.Int64("base", loadgen.StdBaseRPS, "single-cell base rate in rps")
	storm := flag.Int("storm", 0, "wall-clock mode: drive N sessions against an in-process crossd scheduler")
	list := flag.Bool("list", false, "list policies, curves, and the L* failure registry, then exit")
	traceDir := flag.String("trace", "", "record per-phase spans and write them to <dir>/spans.jsonl")
	metricsFile := flag.String("metrics", "", "write Prometheus-text engine metrics to this file (\"-\" for stdout)")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *version {
		fmt.Printf("crossload %s\n", buildinfo.Get())
		return
	}

	if *list {
		listRegistries()
		return
	}

	var policies []string
	if *policy != "" {
		for _, p := range strings.Split(*policy, ",") {
			if p = strings.TrimSpace(p); p != "" {
				policies = append(policies, p)
			}
		}
	}

	var tracer *obs.Tracer
	var metrics *obs.Registry
	if *traceDir != "" {
		tracer = obs.NewTracer(nil)
	}
	if *metricsFile != "" {
		metrics = obs.NewRegistry()
	}

	var err error
	switch {
	case *storm > 0:
		err = runStorm(*seed, *storm, policies)
	case *curve != "":
		err = runCell(*seed, *curve, *base, firstPeak(*peaks, 800), policies, *admission, tracer, metrics)
	default:
		err = runSweep(*seed, policies, *peaks, *admission, *parallel, tracer, metrics)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "crossload: %v\n", err)
		os.Exit(1)
	}

	if tracer != nil {
		if err := writeSpans(tracer, *traceDir); err != nil {
			fmt.Fprintf(os.Stderr, "crossload: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d spans to %s\n", tracer.Len(), filepath.Join(*traceDir, "spans.jsonl"))
	}
	if metrics != nil {
		if err := writeMetrics(metrics, *metricsFile); err != nil {
			fmt.Fprintf(os.Stderr, "crossload: writing metrics: %v\n", err)
			os.Exit(1)
		}
	}
}

func listRegistries() {
	fmt.Println("retry policies (phase-diagram rows):")
	for _, spec := range loadgen.Policies() {
		breaker := "-"
		if spec.Breaker.Enabled {
			breaker = fmt.Sprintf("breaker(fail>=%d, open %dms)", spec.Breaker.FailThreshold, spec.Breaker.OpenMs)
		}
		fmt.Printf("  %-26s %s\n", spec.Label, breaker)
	}
	fmt.Println("\nload curves:")
	for _, name := range loadgen.Curves() {
		fmt.Printf("  %s\n", name)
	}
	fmt.Println("\nload-interaction failure registry (L*):")
	for _, d := range inject.LoadRegistry() {
		fmt.Printf("  %s  %-44s %-20s %s\n", d.ID, d.Anchor, strings.Join(d.Signatures, ","), d.Cell)
	}
}

func parsePeaks(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	var out []int64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad peak %q: %v", f, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func firstPeak(s string, def int64) int64 {
	peaks, err := parsePeaks(s)
	if err != nil || len(peaks) == 0 {
		return def
	}
	return peaks[0]
}

func runSweep(seed uint64, policies []string, peakList string, admission bool, parallel int, tracer *obs.Tracer, metrics *obs.Registry) error {
	peaks, err := parsePeaks(peakList)
	if err != nil {
		return err
	}
	res, err := loadgen.RunPhaseDiagram(loadgen.PhaseOptions{
		Seed: seed, Policies: policies, PeakRPS: peaks,
		Admission: admission, Parallel: parallel,
		Tracer: tracer, Metrics: metrics,
	})
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	fmt.Printf("\nreport-hash: %s\n", res.Hash())
	return nil
}

func runCell(seed uint64, curveName string, base, peak int64, policies []string, admission bool, tracer *obs.Tracer, metrics *obs.Registry) error {
	label := "backoff+jitter+breaker"
	if len(policies) > 0 {
		label = policies[0]
	}
	spec, err := loadgen.PolicyByLabel(label)
	if err != nil {
		return err
	}
	c, err := loadgen.CurveByName(curveName,
		base*loadgen.MicroRPS, peak*loadgen.MicroRPS, loadgen.StdSpikeFrom, loadgen.StdSpikeTo)
	if err != nil {
		return err
	}
	cfg := loadgen.CellConfig(seed, spec, peak, admission)
	cfg.Curve = c
	cfg.Arrivals = nil
	cfg.Label = fmt.Sprintf("%s@%s", spec.Label, curveName)
	cfg.Tracer = tracer
	cfg.Metrics = metrics
	stats, err := loadgen.Run(cfg)
	if err != nil {
		return err
	}
	cls := loadgen.Classify(stats, cfg.Server, cfg.WindowMs,
		loadgen.OverloadEndMs(c, cfg.HorizonMs), spec.Policy.Jittered())

	t := stats.Totals
	fmt.Printf("cell %s base=%drps peak=%drps seed=%d: %s\n", cfg.Label, base, peak, seed, cls.Class)
	fmt.Printf("  arrivals=%d attempts=%d goodput=%d wasted=%d timeouts=%d\n",
		t.Arrivals, t.Attempts, t.Goodput, t.Wasted, t.Timeouts)
	fmt.Printf("  rejected: queue=%d throttled=%d breaker_shed=%d give_ups=%d final_queue=%d\n",
		t.RejectQueue, t.RejectThrottle, t.BreakerShed, t.GiveUps, t.QueueLen)
	fmt.Printf("  latency p50=%.1fms p95=%.1fms p99=%.1fms breaker_opens=%d\n",
		stats.P50Ms, stats.P95Ms, stats.P99Ms, stats.BreakerOpens)
	fmt.Printf("  collapsed_windows=%d tail_collapsed=%d post_amplification=%.2f\n",
		cls.CollapsedWindows, cls.TailCollapsed, cls.PostAmplification)
	if len(cls.Signatures) > 0 {
		fmt.Printf("  signatures: %s\n", strings.Join(cls.Signatures, " "))
	}
	return nil
}

// runStorm drives a real scheduler: a small crossd worker pool running
// genuine fuzz jobs, stormed wall-clock through the same retry
// policies the virtual cells sweep.
func runStorm(seed uint64, sessions int, policies []string) error {
	label := "backoff+jitter+breaker"
	if len(policies) > 0 {
		label = policies[0]
	}
	spec, err := loadgen.PolicyByLabel(label)
	if err != nil {
		return err
	}
	cache, err := serve.NewCache(256, "")
	if err != nil {
		return err
	}
	sched := serve.NewScheduler(serve.SchedulerOptions{
		Workers: 2, QueueDepth: 4, Cache: cache, Executor: &serve.Executor{},
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		sched.Drain(ctx)
	}()

	stats, err := loadgen.DriveScheduler(sched, loadgen.CrossdStormOptions{
		Seed: seed, Sessions: sessions, Clients: 8,
		Policy: spec.Policy, Breaker: spec.Breaker,
		DelayDiv: 100, JobN: 8,
	})
	if err != nil {
		return err
	}
	fmt.Printf("crossd storm policy=%s sessions=%d clients=8 (workers=2 queue=4, delays /100)\n", label, sessions)
	fmt.Printf("  attempts=%d completed=%d failed=%d\n", stats.Attempts, stats.Completed, stats.Failed)
	fmt.Printf("  rejected: queue=%d throttled=%d breaker_shed=%d give_ups=%d breaker_opens=%d\n",
		stats.RejectQueue, stats.RejectThrottle, stats.BreakerShed, stats.GiveUps, stats.BreakerOpens)
	return nil
}

func writeSpans(tr *obs.Tracer, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "spans.jsonl"))
	if err != nil {
		return err
	}
	defer f.Close()
	return tr.WriteSpans(f)
}

func writeMetrics(reg *obs.Registry, dest string) error {
	if dest == "-" {
		return reg.WritePrometheus(os.Stdout)
	}
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	defer f.Close()
	return reg.WritePrometheus(f)
}
