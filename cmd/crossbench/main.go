// Command crossbench measures the framework's benchmark trajectory and
// gates regressions against a recorded baseline.
//
// It measures end-to-end service quantities the per-function benchmarks
// in bench_test.go do not: corpus throughput (cases/sec) and allocation
// cost (allocs/case) over the golden Figure-6 corpus, skew-matrix
// throughput over the default writer->reader pairs, and the crossd
// serving path cold vs cached (the content-address cache speedup).
//
// Usage:
//
//	crossbench [-benchtime 1x] [-o BENCH_candidate.json]
//	           [-compare BENCH_1.json] [-tolerance 0.15] [-all]
//
// With -compare, crossbench exits 1 when a recorded metric regressed
// beyond -tolerance. By default only portable (machine-independent)
// metrics gate — allocation counts — so the comparison is meaningful on
// shared CI runners; -all additionally gates throughput and latency for
// like-for-like hardware. Record files are schema-versioned
// (internal/benchrec); EXPERIMENTS.md tracks the committed trajectory.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/benchrec"
	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/versions"
)

func main() {
	testing.Init() // registers -test.* flags; benchtime is set below
	out := flag.String("o", "", "write the measured record to this file")
	compare := flag.String("compare", "", "baseline record to gate against (exit 1 on regression)")
	tolerance := flag.Float64("tolerance", 0.15, "allowed relative regression before the gate fails")
	all := flag.Bool("all", false, "gate machine-dependent metrics (throughput, latency) too, not just allocation counts")
	benchtime := flag.String("benchtime", "1x", "per-measurement budget, as go test -benchtime (e.g. 1x, 3x, 2s)")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *version {
		fmt.Printf("crossbench %s\n", buildinfo.Get())
		return
	}
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fmt.Fprintf(os.Stderr, "crossbench: bad -benchtime: %v\n", err)
		os.Exit(2)
	}

	rec, err := measure()
	if err != nil {
		fmt.Fprintf(os.Stderr, "crossbench: %v\n", err)
		os.Exit(2)
	}
	for _, m := range rec.Metrics {
		kind := "machine"
		if m.Portable {
			kind = "portable"
		}
		fmt.Printf("%-24s %12.4g %-8s [%s]\n", m.Name, m.Value, m.Unit, kind)
	}
	if *out != "" {
		if err := rec.Write(*out); err != nil {
			fmt.Fprintf(os.Stderr, "crossbench: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *compare == "" {
		return
	}
	base, err := benchrec.Load(*compare)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crossbench: %v\n", err)
		os.Exit(2)
	}
	regs := benchrec.Compare(base, rec, *tolerance, *all)
	if len(regs) == 0 {
		fmt.Printf("no regressions vs %s (tolerance %.0f%%)\n", *compare, *tolerance*100)
		return
	}
	fmt.Fprintf(os.Stderr, "crossbench: %d regression(s) vs %s:\n", len(regs), *compare)
	for _, g := range regs {
		fmt.Fprintf(os.Stderr, "  %s\n", g)
	}
	os.Exit(1)
}

// measure runs the four measurements and assembles the record.
func measure() (*benchrec.Record, error) {
	inputs, err := core.BuildBaseCorpus()
	if err != nil {
		return nil, err
	}

	// Corpus throughput, parallel (the deployment shape): cases/sec.
	var cases int
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.Run(inputs, core.RunOptions{Parallel: 4})
			if err != nil {
				b.Fatal(err)
			}
			cases = len(res.Cases)
		}
	})
	if cases == 0 {
		return nil, fmt.Errorf("corpus run produced no cases")
	}
	corpusRate := float64(cases) * float64(r.N) / r.T.Seconds()

	// Allocation cost, sequential (deterministic for a toolchain):
	// allocs/case. This is the portable metric the CI gate rides on.
	ra := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(inputs, core.RunOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	allocsPerCase := float64(ra.AllocsPerOp()) / float64(cases)

	// Skew-matrix throughput: the corpus re-executed per default
	// writer->reader pair.
	pairs := versions.DefaultPairs()
	rs := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.RunSkewMatrix(inputs, pairs, core.RunOptions{Parallel: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
	skewRate := float64(cases*len(pairs)) * float64(rs.N) / rs.T.Seconds()

	// Service path: one cold job through the crossd scheduler, then the
	// identical resubmission served from the content-address cache.
	coldMs, cachedMs, err := serviceLatency()
	if err != nil {
		return nil, err
	}
	speedup := coldMs / cachedMs

	rec := &benchrec.Record{
		Schema:    benchrec.Schema,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Metrics: []benchrec.Metric{
			{Name: "corpus_cases_per_sec", Unit: "cases/s", Value: round4(corpusRate), Better: benchrec.Higher},
			{Name: "corpus_allocs_per_case", Unit: "allocs", Value: round4(allocsPerCase), Better: benchrec.Lower, Portable: true},
			{Name: "skew_cases_per_sec", Unit: "cases/s", Value: round4(skewRate), Better: benchrec.Higher},
			{Name: "service_cold_ms", Unit: "ms", Value: round4(coldMs), Better: benchrec.Lower},
			{Name: "service_cached_ms", Unit: "ms", Value: round4(cachedMs), Better: benchrec.Lower},
			{Name: "service_speedup_x", Unit: "x", Value: round4(speedup), Better: benchrec.Higher},
		},
	}
	return rec, rec.Validate()
}

// serviceLatency measures submit-to-done through a real scheduler for a
// cold fuzz job and its cached resubmission, in milliseconds.
func serviceLatency() (cold, cached float64, err error) {
	cache, err := serve.NewCache(16, "")
	if err != nil {
		return 0, 0, err
	}
	sched := serve.NewScheduler(serve.SchedulerOptions{
		Workers: 2, QueueDepth: 8, Cache: cache, Executor: &serve.Executor{},
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		sched.Drain(ctx)
	}()
	spec := serve.JobSpec{Kind: serve.KindFuzz, Seed: 5, N: 200, Parallel: 2}

	run := func() (float64, error) {
		start := time.Now()
		job, err := sched.Submit(spec)
		if err != nil {
			return 0, err
		}
		<-job.Done()
		if st := job.Status(); st.State != serve.StateDone {
			return 0, fmt.Errorf("bench job finished %s: %s", st.State, st.Error)
		}
		return float64(time.Since(start)) / float64(time.Millisecond), nil
	}
	if cold, err = run(); err != nil {
		return 0, 0, err
	}
	if cached, err = run(); err != nil {
		return 0, 0, err
	}
	// A cache hit can complete inside the timer's resolution; floor it
	// so the speedup ratio stays finite.
	if cached < 0.001 {
		cached = 0.001
	}
	return cold, cached, nil
}

// round4 trims measurement noise so record diffs stay readable.
func round4(v float64) float64 { return float64(int64(v*10000+0.5)) / 10000 }
