// Command csistudy regenerates the paper's study artifacts — Tables 1
// through 9, Findings 1 through 13, the incident statistics of §3, and
// the CBS comparison of §5.1 — from the encoded dataset, the way the
// original artifact's reproduce_study notebook does.
//
// Usage:
//
//	csistudy [-tables] [-findings] [-incidents] [-cbs]
//
// With no flags, everything is printed.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/dataset"
	"repro/internal/study"
)

func main() {
	tables := flag.Bool("tables", false, "print Tables 1-9")
	findings := flag.Bool("findings", false, "print Findings 1-13 with recomputed statistics")
	incidents := flag.Bool("incidents", false, "print the §3 cloud-incident analysis")
	cbs := flag.Bool("cbs", false, "print the §5.1 CBS comparison")
	listDataset := flag.Bool("dataset", false, "list all 120 CSI failure records")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *version {
		fmt.Printf("csistudy %s\n", buildinfo.Get())
		return
	}

	all := !*tables && !*findings && !*incidents && !*cbs && !*listDataset
	failures, err := dataset.BuildFailures()
	if err != nil {
		fmt.Fprintf(os.Stderr, "csistudy: %v\n", err)
		os.Exit(1)
	}

	if all || *tables {
		for _, t := range study.AllTables(failures) {
			fmt.Println(t.Render())
		}
	}
	if all || *findings {
		ok := true
		for _, f := range study.Findings(failures) {
			fmt.Println(f.Render())
			ok = ok && f.OK()
		}
		if !ok {
			fmt.Fprintln(os.Stderr, "csistudy: some findings did not reproduce")
			os.Exit(1)
		}
		fmt.Println("All quantitative findings reproduce the published statistics.")
	}
	if all || *incidents {
		printIncidents()
	}
	if *listDataset {
		fmt.Printf("CSI failure dataset (%d records; anchors are the issues the paper names):\n\n", len(failures))
		for i := range failures {
			fmt.Println("  " + failures[i].String())
		}
	}
	if all || *cbs {
		csiCount, depCount, controlPct := study.CBSComparison()
		fmt.Printf("\nCBS (2014) re-labeled slice: %d issues — %d CSI failures, %d dependency failures.\n",
			len(dataset.CBSSlice()), csiCount, depCount)
		fmt.Printf("Control-plane share of CBS CSI failures: %d%% (vs 17%% in this study's dataset).\n", controlPct)
	}
}

func printIncidents() {
	fmt.Printf("\nCloud incidents (§3): %d sampled", dataset.TotalIncidents())
	for p, n := range dataset.IncidentSampleSizes {
		fmt.Printf("  %s=%d", p, n)
	}
	incidents := dataset.CSIIncidents()
	fmt.Printf("\nCSI-failure-induced incidents: %d (%d%%), median duration %d minutes\n\n",
		len(incidents), len(incidents)*100/dataset.TotalIncidents(), study.MedianDuration(incidents))
	for _, inc := range incidents {
		cascade := " "
		if inc.CascadedExternally {
			cascade = "C"
		}
		fix := " "
		if inc.MentionedCodeFix {
			fix = "F"
		}
		fmt.Printf("  [%s%s] %-6s %4d min  %-10s  %s\n", cascade, fix, inc.Provider,
			inc.DurationMinutes, inc.Plane, inc.Title)
	}
	fmt.Println("\n  C = cascaded to external services, F = postmortem mentioned interaction code fixes")
}
