// Command csireplay replays the paper's concrete CSI failures on the
// simulators — the three §2.3 examples (Figures 1–3), the SPARK-27239
// fix (Figure 4), the FLINK-12342 fix ladder (Figure 5), and the §6
// case examples — each in its buggy and fixed form.
//
// Usage:
//
//	csireplay [-trace dir] [-metrics file] [scenario]
//
// Scenarios: storm, filesize, scheduler, pmem, token, safemode,
// offsets, quota, redundancy.
// With no argument, every scenario is replayed.
//
// The three §2.3 scenarios print the cross-system propagation chain
// reconstructed from their span trees. -trace writes each traced
// scenario's spans to <dir>/<scenario>.jsonl; -metrics writes
// scenario run counters in Prometheus text format ("-" for stdout).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/flinksim"
	"repro/internal/hbasesim"
	"repro/internal/obs"
	"repro/internal/quotasim"
	"repro/internal/redundancy"
	"repro/internal/replay"
	"repro/internal/serde"
	"repro/internal/sqlval"
	"repro/internal/yarnsim"
)

var (
	traceDir    = flag.String("trace", "", "directory to write per-scenario span JSONL files to")
	metricsFile = flag.String("metrics", "", "file to write Prometheus-text scenario metrics to (\"-\" for stdout)")
	version     = flag.Bool("version", false, "print build information and exit")

	registry *obs.Registry
)

func main() {
	flag.Parse()
	if *version {
		fmt.Printf("csireplay %s\n", buildinfo.Get())
		return
	}
	which := flag.Arg(0)
	if *metricsFile != "" {
		registry = obs.NewRegistry()
	}
	scenarios := []struct {
		name string
		run  func()
	}{
		{"storm", storm},
		{"filesize", filesize},
		{"scheduler", scheduler},
		{"pmem", pmem},
		{"token", token},
		{"safemode", safemode},
		{"offsets", offsets},
		{"quota", quota},
		{"redundancy", redundancyDemo},
	}
	ran := false
	for _, s := range scenarios {
		if which == "" || which == s.name {
			s.run()
			registry.Counter("csireplay_scenario_runs_total", "scenario", s.name).Inc()
			fmt.Println()
			ran = true
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "csireplay: unknown scenario %q\n", which)
		os.Exit(2)
	}
	if registry != nil {
		if err := writeMetrics(registry, *metricsFile); err != nil {
			log.Fatal(err)
		}
	}
}

func writeMetrics(reg *obs.Registry, dest string) error {
	if dest == "-" {
		return reg.WritePrometheus(os.Stdout)
	}
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	defer f.Close()
	return reg.WritePrometheus(f)
}

// propagation prints the §2.3 scenario's cross-system chain and, with
// -trace, writes the span tree to <dir>/<name>.jsonl.
func propagation(name string) {
	tr, err := replay.Scenario23Trace(name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  propagation: %s\n", obs.RenderChain(tr.Chain(nil)))
	registry.Counter("csireplay_spans_total", "scenario", name).Add(int64(tr.Len()))
	if *traceDir == "" {
		return
	}
	if err := os.MkdirAll(*traceDir, 0o755); err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(filepath.Join(*traceDir, name+".jsonl"))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := tr.WriteSpans(f); err != nil {
		log.Fatal(err)
	}
}

func storm() {
	fmt.Println("=== FLINK-12342 (Figures 1 and 5): container-request storm ===")
	fmt.Println("Flink requests C containers every 500ms; YARN needs longer to allocate.")
	for _, r := range replay.FixLadder() {
		fmt.Println("  " + r.String())
	}
	propagation("storm")
}

func filesize() {
	fmt.Println("=== SPARK-27239 (Figures 2 and 4): compressed file size -1 ===")
	if _, err := replay.CompressedFileRead(true, false); err != nil {
		fmt.Printf("  buggy check, compressed file: %v\n", err)
	}
	if data, err := replay.CompressedFileRead(true, true); err == nil {
		fmt.Printf("  fixed check (length >= -1):   read %d bytes\n", len(data))
	}
	propagation("filesize")
}

func scheduler() {
	fmt.Println("=== FLINK-19141 (Figure 3): inconsistent scheduler configurations ===")
	tuned := map[string]string{yarnsim.KeyMinAllocMB: "128"}
	if err := replay.SchedulerMismatch("capacity", tuned); err == nil {
		fmt.Println("  capacity scheduler + tuned minimum-allocation-mb: allocation OK")
	}
	if err := replay.SchedulerMismatch("fair", tuned); err != nil {
		fmt.Printf("  fair scheduler + same keys: %v\n", err)
	}
	if err := replay.SchedulerMismatch("fair", map[string]string{yarnsim.KeyIncAllocMB: "128"}); err == nil {
		fmt.Println("  fair scheduler + increment-allocation keys: allocation OK")
	}
	propagation("scheduler")
}

func pmem() {
	fmt.Println("=== FLINK-887: JobManager vs YARN pmem monitor ===")
	if killed, reason := replay.PmemKill(flinksim.SizingNoHeadroom); killed {
		fmt.Printf("  no-headroom JVM sizing: %s\n", reason)
	}
	if killed, _ := replay.PmemKill(flinksim.SizingWithCutoff); !killed {
		fmt.Println("  cutoff JVM sizing: survives the monitor")
	}
}

func token() {
	fmt.Println("=== YARN-2790: delegation-token renewal vs consumption ===")
	if err := replay.TokenExpiry(true); err != nil {
		fmt.Printf("  renewal at submission: %v\n", err)
	}
	if err := replay.TokenExpiry(false); err == nil {
		fmt.Println("  renewal adjacent to the read: OK")
	}
}

func safemode() {
	fmt.Println("=== HBASE-537: HBase vs NameNode safe mode ===")
	if ok, err := replay.SafeModeStartup(hbasesim.StartupAssumeReady, 3000); !ok {
		fmt.Printf("  assume-ready startup: %v\n", err)
	}
	if ok, _ := replay.SafeModeStartup(hbasesim.StartupWaitForNameNode, 3000); ok {
		fmt.Println("  wait-for-NameNode startup: first write OK")
	}
}

func offsets() {
	fmt.Println("=== SPARK-19361 pattern: Kafka offset contiguity assumption ===")
	if n, err := replay.OffsetGap(true); err != nil {
		fmt.Printf("  contiguity assumed: job failed after %d records: %v\n", n, err)
	}
	if n, err := replay.OffsetGap(false); err == nil {
		fmt.Printf("  gap-tolerant consumer: read %d surviving records\n", n)
	}
}

func quota() {
	fmt.Println("=== GCP User-ID incident (§1): monitoring x quota interaction ===")
	fmt.Println("A deregistered monitor reports usage 0; the quota system reads")
	fmt.Println("zero as the expected load and shrinks the service's quota.")
	fmt.Println("  " + quotasim.RunIncident(quotasim.PolicyTrustReports, false).String())
	fmt.Println("  " + quotasim.RunIncident(quotasim.PolicyGracePeriod, false).String())
	fmt.Println("  " + quotasim.RunIncident(quotasim.PolicyIgnoreUnregistered, false).String())
	fmt.Println("  " + quotasim.RunIncident(quotasim.PolicyTrustReports, true).String())
	fmt.Println("  (policies: 0=trust reports/buggy, 1=grace period, 2=ignore unregistered;")
	fmt.Println("   fixedProtocol=true: a deregistered monitor stops reporting)")
}

func redundancyDemo() {
	fmt.Println("=== Interaction redundancy (§5.2 / §10 direction) ===")
	d := core.NewDeployment()
	dec, _ := sqlval.ParseDecimal("12.34")
	schema := serde.Schema{Columns: []serde.Column{{Name: "amt", Type: sqlval.DecimalType(10, 2)}}}
	df, err := d.Spark.CreateDataFrame(schema, []sqlval.Row{{sqlval.DecimalVal(dec, 10)}})
	if err != nil {
		log.Fatal(err)
	}
	if err := df.SaveAsTable("amounts", "parquet"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("A DataFrame-written decimal table (legacy binary encoding, SPARK-39158):")
	res, err := redundancy.ReadWithFailover(d, "amounts", core.HiveQL, core.SparkSQL)
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range res.Attempts {
		fmt.Printf("  %s\n", a)
	}
	fmt.Printf("  served by %s after masking %d interface failure(s)\n", res.Served, res.MaskedFailures)
}
