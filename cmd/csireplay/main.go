// Command csireplay replays the paper's concrete CSI failures on the
// simulators — the three §2.3 examples (Figures 1–3), the SPARK-27239
// fix (Figure 4), the FLINK-12342 fix ladder (Figure 5), and the §6
// case examples — each in its buggy and fixed form.
//
// Usage:
//
//	csireplay [scenario]
//
// Scenarios: storm, filesize, scheduler, pmem, token, safemode,
// offsets, quota, redundancy.
// With no argument, every scenario is replayed.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/flinksim"
	"repro/internal/hbasesim"
	"repro/internal/quotasim"
	"repro/internal/redundancy"
	"repro/internal/replay"
	"repro/internal/serde"
	"repro/internal/sqlval"
	"repro/internal/yarnsim"
)

func main() {
	flag.Parse()
	which := flag.Arg(0)
	scenarios := []struct {
		name string
		run  func()
	}{
		{"storm", storm},
		{"filesize", filesize},
		{"scheduler", scheduler},
		{"pmem", pmem},
		{"token", token},
		{"safemode", safemode},
		{"offsets", offsets},
		{"quota", quota},
		{"redundancy", redundancyDemo},
	}
	ran := false
	for _, s := range scenarios {
		if which == "" || which == s.name {
			s.run()
			fmt.Println()
			ran = true
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "csireplay: unknown scenario %q\n", which)
		os.Exit(2)
	}
}

func storm() {
	fmt.Println("=== FLINK-12342 (Figures 1 and 5): container-request storm ===")
	fmt.Println("Flink requests C containers every 500ms; YARN needs longer to allocate.")
	for _, r := range replay.FixLadder() {
		fmt.Println("  " + r.String())
	}
}

func filesize() {
	fmt.Println("=== SPARK-27239 (Figures 2 and 4): compressed file size -1 ===")
	if _, err := replay.CompressedFileRead(true, false); err != nil {
		fmt.Printf("  buggy check, compressed file: %v\n", err)
	}
	if data, err := replay.CompressedFileRead(true, true); err == nil {
		fmt.Printf("  fixed check (length >= -1):   read %d bytes\n", len(data))
	}
}

func scheduler() {
	fmt.Println("=== FLINK-19141 (Figure 3): inconsistent scheduler configurations ===")
	tuned := map[string]string{yarnsim.KeyMinAllocMB: "128"}
	if err := replay.SchedulerMismatch("capacity", tuned); err == nil {
		fmt.Println("  capacity scheduler + tuned minimum-allocation-mb: allocation OK")
	}
	if err := replay.SchedulerMismatch("fair", tuned); err != nil {
		fmt.Printf("  fair scheduler + same keys: %v\n", err)
	}
	if err := replay.SchedulerMismatch("fair", map[string]string{yarnsim.KeyIncAllocMB: "128"}); err == nil {
		fmt.Println("  fair scheduler + increment-allocation keys: allocation OK")
	}
}

func pmem() {
	fmt.Println("=== FLINK-887: JobManager vs YARN pmem monitor ===")
	if killed, reason := replay.PmemKill(flinksim.SizingNoHeadroom); killed {
		fmt.Printf("  no-headroom JVM sizing: %s\n", reason)
	}
	if killed, _ := replay.PmemKill(flinksim.SizingWithCutoff); !killed {
		fmt.Println("  cutoff JVM sizing: survives the monitor")
	}
}

func token() {
	fmt.Println("=== YARN-2790: delegation-token renewal vs consumption ===")
	if err := replay.TokenExpiry(true); err != nil {
		fmt.Printf("  renewal at submission: %v\n", err)
	}
	if err := replay.TokenExpiry(false); err == nil {
		fmt.Println("  renewal adjacent to the read: OK")
	}
}

func safemode() {
	fmt.Println("=== HBASE-537: HBase vs NameNode safe mode ===")
	if ok, err := replay.SafeModeStartup(hbasesim.StartupAssumeReady, 3000); !ok {
		fmt.Printf("  assume-ready startup: %v\n", err)
	}
	if ok, _ := replay.SafeModeStartup(hbasesim.StartupWaitForNameNode, 3000); ok {
		fmt.Println("  wait-for-NameNode startup: first write OK")
	}
}

func offsets() {
	fmt.Println("=== SPARK-19361 pattern: Kafka offset contiguity assumption ===")
	if n, err := replay.OffsetGap(true); err != nil {
		fmt.Printf("  contiguity assumed: job failed after %d records: %v\n", n, err)
	}
	if n, err := replay.OffsetGap(false); err == nil {
		fmt.Printf("  gap-tolerant consumer: read %d surviving records\n", n)
	}
}

func quota() {
	fmt.Println("=== GCP User-ID incident (§1): monitoring x quota interaction ===")
	fmt.Println("A deregistered monitor reports usage 0; the quota system reads")
	fmt.Println("zero as the expected load and shrinks the service's quota.")
	fmt.Println("  " + quotasim.RunIncident(quotasim.PolicyTrustReports, false).String())
	fmt.Println("  " + quotasim.RunIncident(quotasim.PolicyGracePeriod, false).String())
	fmt.Println("  " + quotasim.RunIncident(quotasim.PolicyIgnoreUnregistered, false).String())
	fmt.Println("  " + quotasim.RunIncident(quotasim.PolicyTrustReports, true).String())
	fmt.Println("  (policies: 0=trust reports/buggy, 1=grace period, 2=ignore unregistered;")
	fmt.Println("   fixedProtocol=true: a deregistered monitor stops reporting)")
}

func redundancyDemo() {
	fmt.Println("=== Interaction redundancy (§5.2 / §10 direction) ===")
	d := core.NewDeployment()
	dec, _ := sqlval.ParseDecimal("12.34")
	schema := serde.Schema{Columns: []serde.Column{{Name: "amt", Type: sqlval.DecimalType(10, 2)}}}
	df, err := d.Spark.CreateDataFrame(schema, []sqlval.Row{{sqlval.DecimalVal(dec, 10)}})
	if err != nil {
		log.Fatal(err)
	}
	if err := df.SaveAsTable("amounts", "parquet"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("A DataFrame-written decimal table (legacy binary encoding, SPARK-39158):")
	res, err := redundancy.ReadWithFailover(d, "amounts", core.HiveQL, core.SparkSQL)
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range res.Attempts {
		fmt.Printf("  %s\n", a)
	}
	fmt.Printf("  served by %s after masking %d interface failure(s)\n", res.Served, res.MaskedFailures)
}
