// Command crossfuzz runs a randomized cross-system fuzzing campaign
// over the simulated Spark-Hive data plane: seeded random multi-column
// schemas, typed boundary/invalid values, session configurations, and
// interface/format assignments, executed through the §8 harness and its
// three oracles. Failing cases are clustered by discrepancy signature;
// signatures outside the known Figure-6 registry are delta-debugged to
// minimal reproducers and (with -promote) persisted into the regression
// corpus.
//
// Usage:
//
//	crossfuzz [-seed N] [-n N] [-parallel N] [-budget DUR] [-corpus dir]
//	          [-promote] [-versions] [-trace dir] [-metrics file]
//
// -versions arms the version axis: each case additionally draws a
// writer->reader version pair (Spark 2.3/2.4/3.2 × Hive 2.3/3.1) and
// runs on a version-skew deployment, so upgrade-triggered failures
// surface alongside single-version ones. The flag is part of the
// campaign identity — the same seed produces a different (but still
// reproducible) report with it on.
//
// A fixed (-seed, -n) campaign without -budget is reproducible bit for
// bit: the printed report-hash is identical run-to-run and across
// -parallel settings.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/fuzzgen"
	"repro/internal/obs"
)

func main() {
	seed := flag.Uint64("seed", 1, "campaign seed (fixed seed + fixed -n is reproducible)")
	n := flag.Int("n", 2000, "number of generated probe groups")
	parallel := flag.Int("parallel", 1, "worker goroutines per batch")
	budget := flag.Duration("budget", 0, "wall-time budget (0 = none; budget-stopped campaigns are not reproducible)")
	corpus := flag.String("corpus", "testdata/fuzzcorpus", "regression corpus directory (dedup + promotion target)")
	promote := flag.Bool("promote", false, "write minimized new-signature reproducers into -corpus")
	confs := flag.Int("confs", 6, "size of the random session-configuration pool")
	versionsFlag := flag.Bool("versions", false, "also fuzz the version axis: each case draws a writer->reader version pair (changes the campaign outcome for a given seed)")
	traceDir := flag.String("trace", "", "record causal spans and write them to <dir>/spans.jsonl")
	metricsFile := flag.String("metrics", "", "write Prometheus-text harness metrics to this file (\"-\" for stdout)")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *version {
		fmt.Printf("crossfuzz %s\n", buildinfo.Get())
		return
	}

	opts := fuzzgen.Options{
		Seed:      *seed,
		N:         *n,
		Parallel:  *parallel,
		Budget:    *budget,
		Confs:     *confs,
		Versions:  *versionsFlag,
		CorpusDir: *corpus,
	}
	if *traceDir != "" {
		opts.Tracer = obs.NewTracer(nil)
	}
	if *metricsFile != "" {
		opts.Metrics = obs.NewRegistry()
	}

	// SIGINT/SIGTERM cancel the campaign between probe groups: the
	// partial report is still flushed (clusters, hash, "stopped early"
	// marker) instead of the process dying mid-write. A second signal
	// kills the process via the restored default handler.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opts.Context = ctx

	res, err := fuzzgen.RunCampaign(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crossfuzz: %v\n", err)
		os.Exit(1)
	}
	if res.Cancelled {
		fmt.Fprintln(os.Stderr, "crossfuzz: interrupted; flushing partial report")
	}
	fmt.Print(res.Render())
	fmt.Printf("\nreport-hash: %s\n", res.Hash())
	fmt.Printf("elapsed: %s\n", res.Elapsed.Round(time.Millisecond))

	if *promote && len(res.Reproducers) > 0 {
		files, err := res.Promote(*corpus)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crossfuzz: promote: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("promoted %d reproducer(s):\n", len(files))
		for _, f := range files {
			fmt.Printf("  %s\n", f)
		}
	}

	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "crossfuzz: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(filepath.Join(*traceDir, "spans.jsonl"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "crossfuzz: %v\n", err)
			os.Exit(1)
		}
		if err := opts.Tracer.WriteSpans(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "crossfuzz: writing spans: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %d spans to %s\n", opts.Tracer.Len(), filepath.Join(*traceDir, "spans.jsonl"))
	}
	if *metricsFile != "" {
		if err := writeMetrics(opts.Metrics, *metricsFile); err != nil {
			fmt.Fprintf(os.Stderr, "crossfuzz: writing metrics: %v\n", err)
			os.Exit(1)
		}
	}
}

func writeMetrics(reg *obs.Registry, dest string) error {
	if dest == "-" {
		return reg.WritePrometheus(os.Stdout)
	}
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	defer f.Close()
	return reg.WritePrometheus(f)
}
