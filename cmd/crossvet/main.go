// Command crossvet statically enforces the repository's determinism
// and cross-boundary contracts: it loads every package of the module
// with the standard library's go/parser and go/types (zero
// dependencies, like everything else here) and runs the
// internal/lint analyzer suite over them. The report is deterministic
// — findings in sorted order with a sha256 report hash, the same
// convention as crossfuzz and crosspart — so two runs over the same
// tree are byte-identical and the gate itself obeys the contract it
// enforces.
//
// Usage:
//
//	crossvet [-C dir] [-json] [-show-waived]   run the suite
//	crossvet -ci                               the CI gate: gofmt + suite
//	crossvet -list                             list analyzers and contracts
//	crossvet -version                          build identity
//
// Exit status is 0 when the tree is clean (no unwaived findings and,
// under -ci, no unformatted files), 1 when it is not, 2 on usage or
// load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/lint"
)

func main() {
	var (
		dir        = flag.String("C", ".", "module root (or any directory inside it)")
		jsonOut    = flag.Bool("json", false, "emit the report as JSON")
		ci         = flag.Bool("ci", false, "run the full CI gate: gofmt check plus the analyzer suite")
		list       = flag.Bool("list", false, "list the analyzers and the contract each enforces")
		version    = flag.Bool("version", false, "print build identity and exit")
		showWaived = flag.Bool("show-waived", false, "include waived findings in the text report")
	)
	flag.Parse()

	if *version {
		fmt.Println("crossvet", buildinfo.Get().String())
		return
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Contract)
		}
		return
	}

	root, err := lint.FindModuleRoot(*dir)
	if err != nil {
		fatal(err)
	}
	var unformatted []string
	if *ci {
		if unformatted, err = lint.Unformatted(root); err != nil {
			fatal(err)
		}
	}
	m, err := lint.LoadModule(root)
	if err != nil {
		fatal(err)
	}
	report, err := lint.Run(m, lint.DefaultConfig())
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		out := struct {
			*lint.Report
			Unformatted []string `json:"unformatted,omitempty"`
		}{report, unformatted}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		fmt.Print(report.Render(*showWaived))
		for _, f := range unformatted {
			fmt.Printf("gofmt: %s is not gofmt-formatted\n", f)
		}
	}

	if len(report.Unwaived()) > 0 || len(unformatted) > 0 {
		os.Exit(1)
	}
}

// fatal reports a load/usage error on stderr and exits 2, keeping
// exit 1 unambiguous: 1 always means findings.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crossvet:", err)
	os.Exit(2)
}
