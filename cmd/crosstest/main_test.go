package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestMetricsExportArithmetic pins the acceptance criterion for the
// -metrics flag: the exported text parses as Prometheus and the
// per-oracle case counts partition the total case count.
func TestMetricsExportArithmetic(t *testing.T) {
	corpus, err := core.BuildCorpus()
	if err != nil {
		t.Fatal(err)
	}
	// A slice of the corpus keeps the test fast while exercising both
	// valid (wr-oracle) and invalid (eh-oracle) inputs.
	var inputs []core.Input
	for _, in := range corpus {
		if len(inputs) < 12 || !in.Valid && len(inputs) < 16 {
			inputs = append(inputs, in)
		}
	}
	reg := obs.NewRegistry()
	res, err := core.Run(inputs, core.RunOptions{Metrics: reg, Families: []string{"ss"}})
	if err != nil {
		t.Fatal(err)
	}

	// Exercise the same path the -metrics flag takes, then parse the
	// file back.
	dest := filepath.Join(t.TempDir(), "metrics.prom")
	if err := writeMetrics(reg, dest); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(dest)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := obs.ParsePrometheus(f)
	if err != nil {
		t.Fatalf("export is not valid Prometheus text: %v", err)
	}

	total := got["crosstest_cases_total"]
	if total != float64(len(res.Cases)) {
		t.Errorf("crosstest_cases_total = %v, want %d", total, len(res.Cases))
	}
	wr := got[`crosstest_oracle_cases_total{oracle="wr"}`]
	eh := got[`crosstest_oracle_cases_total{oracle="eh"}`]
	if wr+eh != total {
		t.Errorf("per-oracle case counts do not sum to total: wr=%v eh=%v total=%v", wr, eh, total)
	}
	if wr == 0 || eh == 0 {
		t.Errorf("expected both oracles exercised, got wr=%v eh=%v", wr, eh)
	}
}

// TestTraceExportWritesSpans pins that -trace produces a spans.jsonl
// with one line per recorded span.
func TestTraceExportWritesSpans(t *testing.T) {
	corpus, err := core.BuildCorpus()
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer(nil)
	if _, err := core.Run(corpus[:4], core.RunOptions{Tracer: tr, Families: []string{"ss"}}); err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("traced run recorded no spans")
	}
	dir := t.TempDir()
	if err := writeSpans(tr, dir); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteSpans(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(buf.Bytes(), []byte("\n")); lines != tr.Len() {
		t.Errorf("spans.jsonl has %d lines, want %d", lines, tr.Len())
	}
}
