// Command crosstest runs the §8 cross-system test over the simulated
// Spark-Hive data plane: the full input corpus through the eight
// write/read plans of Figure 6 and the three backend formats, under the
// three oracles, and prints the discrepancy report.
//
// Usage:
//
//	crosstest [-family ss|sh|hs] [-conf key=value]... [-failures N] [-inputs prefix]
//	          [-versions matrix|list|PAIR] [-json] [-trace dir] [-metrics file]
//
// The -conf flag applies a deployment configuration before testing —
// "testing systems under the deployment configuration" — so the effect
// of the fix configurations on the report can be observed directly.
//
// -versions switches to version-skew differential testing: the corpus
// runs on a deployment whose writer and reader stacks carry different
// Spark/Hive versions, and skew-only discrepancies are isolated and
// pinned against the skew registry. "matrix" runs the default
// writer×reader pair matrix, "list" prints the modeled versions, pairs,
// and skew registry, and a PAIR like "2.3.0/2.3.9->3.2.1/3.1.2" runs a
// single cell. Unknown versions are rejected, never normalized.
//
// -trace records a causal span for every cross-system hop of every
// case and writes them to <dir>/spans.jsonl; -failures output then
// includes each failure's reconstructed propagation chain. -metrics
// writes harness counters (per-plan, per-oracle, durations) in
// Prometheus text format ("-" for stdout).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/inject"
	"repro/internal/obs"
	"repro/internal/versions"
)

type confFlags map[string]string

func (c confFlags) String() string { return fmt.Sprint(map[string]string(c)) }

func (c confFlags) Set(v string) error {
	k, val, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want key=value, got %q", v)
	}
	c[k] = val
	return nil
}

func main() {
	conf := confFlags{}
	family := flag.String("family", "", "restrict to a plan family: ss, sh, or hs")
	failures := flag.Int("failures", 0, "print up to N individual oracle failures")
	inputs := flag.String("inputs", "", "restrict inputs to those whose name has this prefix")
	parallel := flag.Int("parallel", 1, "worker goroutines executing test cases")
	wide := flag.Bool("wide", false, "also run the multi-column (wide-table) mode")
	sweep := flag.Bool("sweep", false, "sweep the fix configurations and diff the discrepancy profiles")
	partitions := flag.Bool("partitions", false, "also run the partitioned-table mode (candidate new discrepancies)")
	jsonOut := flag.Bool("json", false, "emit the machine-readable report (the same shape crossd's /result embeds) instead of text")
	logsDir := flag.String("logs", "", "write per-oracle failure logs (<family>_<oracle>_failed.json) to this directory")
	traceDir := flag.String("trace", "", "record causal spans and write them to <dir>/spans.jsonl")
	metricsFile := flag.String("metrics", "", "write Prometheus-text harness metrics to this file (\"-\" for stdout)")
	versionsSpec := flag.String("versions", "", "version-skew mode: \"matrix\" (default pair matrix), \"list\" (modeled versions and skew registry), or one writer->reader pair like \"2.3.0/2.3.9->3.2.1/3.1.2\"")
	flag.Var(conf, "conf", "Spark configuration override, key=value (repeatable)")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *version {
		fmt.Printf("crosstest %s\n", buildinfo.Get())
		return
	}

	corpus, err := core.BuildCorpus()
	if err != nil {
		fmt.Fprintf(os.Stderr, "crosstest: %v\n", err)
		os.Exit(1)
	}
	if *inputs != "" {
		var filtered []core.Input
		for _, in := range corpus {
			if strings.HasPrefix(in.Name, *inputs) {
				filtered = append(filtered, in)
			}
		}
		corpus = filtered
	}
	opts := core.RunOptions{SparkConf: conf, Parallel: *parallel}
	if *family != "" {
		opts.Families = []string{*family}
	}
	if *traceDir != "" {
		opts.Tracer = obs.NewTracer(nil)
	}
	if *metricsFile != "" {
		opts.Metrics = obs.NewRegistry()
	}

	if *versionsSpec != "" {
		runVersions(*versionsSpec, corpus, opts)
		return
	}

	if !*jsonOut {
		fmt.Printf("Running cross-test: %d inputs x %d plans x 3 formats\n\n", len(corpus), plansIn(opts))
	}
	result, err := core.Run(corpus, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crosstest: %v\n", err)
		os.Exit(1)
	}
	if *jsonOut {
		// The same core.ReportJSON shape crossd serves inside /result,
		// so CLI and service outputs are directly diffable.
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(result.Report.JSON()); err != nil {
			fmt.Fprintf(os.Stderr, "crosstest: encoding report: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Print(result.Report.Render())

	if *logsDir != "" {
		names, err := result.WriteOracleLogs(*logsDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crosstest: writing logs: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nWrote %d oracle failure logs to %s: %s\n", len(names), *logsDir, strings.Join(names, ", "))
	}

	if *failures > 0 {
		fmt.Printf("\nFirst %d oracle failures:\n", *failures)
		for i, f := range result.Failures {
			if i >= *failures {
				break
			}
			fmt.Printf("  [%s] %s: %s\n", f.Oracle, f.Case.Describe(), f.Detail)
			if f.Chain != "" {
				fmt.Printf("      propagation: %s\n", f.Chain)
			}
		}
	}

	if *traceDir != "" {
		if err := writeSpans(opts.Tracer, *traceDir); err != nil {
			fmt.Fprintf(os.Stderr, "crosstest: writing spans: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nWrote %d spans to %s\n", opts.Tracer.Len(), filepath.Join(*traceDir, "spans.jsonl"))
	}
	if *metricsFile != "" {
		if err := writeMetrics(opts.Metrics, *metricsFile); err != nil {
			fmt.Fprintf(os.Stderr, "crosstest: writing metrics: %v\n", err)
			os.Exit(1)
		}
	}
	if unknown := result.Report.UnknownSignatures(); len(unknown) > 0 {
		fmt.Printf("\nUnmapped signatures (candidate new discrepancies): %v\n", unknown)
	}

	if *sweep {
		names := []string{"default"}
		configs := map[string]map[string]string{"default": nil}
		for _, d := range inject.Registry() {
			if len(d.FixConf) == 0 {
				continue
			}
			name := fmt.Sprintf("fix-%d", d.Number)
			if _, seen := configs[name]; seen {
				continue
			}
			names = append(names, name)
			configs[name] = d.FixConf
		}
		cells, err := core.ConfigSweep(corpus, names, configs, core.RunOptions{Parallel: *parallel})
		if err != nil {
			fmt.Fprintf(os.Stderr, "crosstest: sweep: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(core.RenderSweep(cells))
	}

	if *partitions {
		pres, err := core.RunPartitions("orc", opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crosstest: partitions: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nPartitioned-table mode: %d failures; candidate new discrepancies: %v\n",
			len(pres.Failures), pres.Report.UnknownSignatures())
		if len(pres.Failures) > 0 {
			fmt.Printf("  example: %s\n", pres.Failures[0].Detail)
		}
	}

	if *wide {
		wres, err := core.RunWide(corpus, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crosstest: wide: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nWide-table mode (%d columns, one table per plan and format): %d failures, %d distinct discrepancies %v\n",
			len(wres.Columns), len(wres.Failures), len(wres.Report.DistinctKnown()), wres.Report.DistinctKnown())
	}
}

// runVersions is the -versions mode: list the modeled versions, or run
// the skew matrix over the default pairs or one explicit pair.
func runVersions(spec string, corpus []core.Input, opts core.RunOptions) {
	var pairs []versions.Pair
	switch spec {
	case "list":
		fmt.Printf("Modeled Spark versions: %s\n", strings.Join(versions.SparkVersions(), ", "))
		fmt.Printf("Modeled Hive versions:  %s\n", strings.Join(versions.HiveVersions(), ", "))
		fmt.Printf("\nDefault writer->reader pairs:\n")
		for _, p := range versions.DefaultPairs() {
			label := p.String()
			if !p.Skewed() {
				label += " (baseline)"
			}
			fmt.Printf("  %s\n", label)
		}
		fmt.Printf("\nVersion-skew discrepancy registry:\n")
		for _, d := range inject.SkewRegistry() {
			fmt.Printf("  %-3s %-12s [%s] %s\n", d.ID, d.Anchor, d.Boundary, d.Title)
		}
		return
	case "matrix":
		pairs = versions.DefaultPairs()
	default:
		p, err := versions.ParsePair(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crosstest: -versions: %v\n", err)
			os.Exit(1)
		}
		pairs = []versions.Pair{p}
	}
	fmt.Printf("Running version-skew cross-test: %d inputs x %d plans x 3 formats x %d pairs\n\n",
		len(corpus), plansIn(opts), len(pairs))
	m, err := core.RunSkewMatrix(corpus, pairs, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crosstest: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(m.Render())
}

func writeSpans(tr *obs.Tracer, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "spans.jsonl"))
	if err != nil {
		return err
	}
	defer f.Close()
	return tr.WriteSpans(f)
}

func writeMetrics(reg *obs.Registry, dest string) error {
	if dest == "-" {
		return reg.WritePrometheus(os.Stdout)
	}
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	defer f.Close()
	return reg.WritePrometheus(f)
}

func plansIn(opts core.RunOptions) int {
	if len(opts.Families) == 0 {
		return len(core.Plans())
	}
	n := 0
	for _, p := range core.Plans() {
		for _, f := range opts.Families {
			if p.Family == f {
				n++
			}
		}
	}
	return n
}
