// Command crossd is the long-running differential-testing service: it
// accepts cross-system test jobs over HTTP — Figure-6 corpus runs,
// -conf configuration sweeps, fuzz campaigns identified by (seed, n),
// and version-skew matrix runs over writer->reader version pairs —
// executes them on a shared bounded worker pool over the §8 harness,
// and content-addresses the results. A job's spec is
// hashed; completed reports are stored in an LRU + disk cache, so an
// identical submission is served without re-executing a single case.
//
// Usage:
//
//	crossd [-addr :8731] [-workers N] [-queue N] [-job-timeout DUR]
//	       [-cache-entries N] [-cache-dir DIR] [-drain-grace DUR]
//
// Cluster mode shards crossd across nodes. A coordinator fronts a set
// of workers, splits each job (corpus by family, fuzz by seed range,
// skew by pair, partition by scenario), fans the sub-jobs out with
// work-stealing, and merges the sub-results byte-identically to a
// single-node run:
//
//	crossd -cluster a=http://hostA:8731,b=http://hostB:8731 [-split N]
//
// A worker joins the distributed cache tier by naming itself and the
// membership (peers probe each other's caches before re-executing, so
// a resharded resubmission runs nothing):
//
//	crossd -node a -peers a=http://hostA:8731,b=http://hostB:8731
//
// API:
//
//	POST /api/v1/jobs             submit a job spec (202 accepted,
//	                              200 cache hit, 429 queue full + Retry-After,
//	                              503 draining)
//	GET  /api/v1/jobs             list jobs
//	GET  /api/v1/jobs/{id}        job status
//	GET  /api/v1/jobs/{id}/result completed report (byte-identical on cache hits)
//	GET  /api/v1/jobs/{id}/stream NDJSON failure stream + terminal event
//	GET  /api/v1/cache/{key}      raw cached result (the peer-fetch endpoint)
//	PUT  /api/v1/cache/{key}      peer write-through (validated against the key)
//	GET  /cluster                 cluster-wide aggregated metrics (coordinator)
//	GET  /metrics                 Prometheus text exposition (stage
//	                              histograms carry exemplar trace IDs)
//	GET  /healthz                 readiness + build version (503 while draining)
//	GET  /debug/events            flight-recorder replay (?job=ID, ?n=N)
//	GET  /debug/pprof/...         live profiling (net/http/pprof)
//
// On SIGTERM/SIGINT crossd stops admitting jobs, lets queued and
// in-flight jobs finish (up to -drain-grace, then cancels them), and
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/cluster"
	"repro/internal/cluster/chash"
	"repro/internal/obs"
	"repro/internal/serve"
)

// config is the flag surface of one crossd process.
type config struct {
	addr         string
	workers      int
	queue        int
	jobTimeout   time.Duration
	cacheEntries int
	cacheDir     string
	drainGrace   time.Duration
	events       int
	spanCap      int

	// Cluster mode: clusterSpec makes this a coordinator over the
	// listed workers; nodeName+peersSpec join a worker to the
	// distributed cache tier; split overrides the fuzz fan-out.
	clusterSpec string
	nodeName    string
	peersSpec   string
	split       int
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8731", "listen address")
	flag.IntVar(&cfg.workers, "workers", 2, "concurrent job executors")
	flag.IntVar(&cfg.queue, "queue", 16, "admission queue depth (submissions past it get 429)")
	flag.DurationVar(&cfg.jobTimeout, "job-timeout", 10*time.Minute, "per-job execution bound (0 = none)")
	flag.IntVar(&cfg.cacheEntries, "cache-entries", 128, "in-memory result cache entries (LRU)")
	flag.StringVar(&cfg.cacheDir, "cache-dir", "", "spill cached results to this directory (survives restarts)")
	flag.DurationVar(&cfg.drainGrace, "drain-grace", 30*time.Second, "how long to let in-flight jobs finish on shutdown")
	flag.IntVar(&cfg.events, "events", 1024, "flight-recorder ring size (0 disables /debug/events)")
	flag.IntVar(&cfg.spanCap, "span-cap", 4096, "retained trace spans (0 disables tracing)")
	flag.StringVar(&cfg.clusterSpec, "cluster", "", "coordinate a worker cluster: name=url[,name=url...]")
	flag.StringVar(&cfg.nodeName, "node", "", "this worker's cluster node name (joins the peer cache tier with -peers)")
	flag.StringVar(&cfg.peersSpec, "peers", "", "cluster membership for the peer cache tier: name=url[,name=url...]")
	flag.IntVar(&cfg.split, "split", 0, "fuzz-campaign split factor in cluster mode (0 = node count)")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *version {
		fmt.Printf("crossd %s\n", buildinfo.Get())
		return
	}

	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "crossd: %v\n", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	cache, err := serve.NewCache(cfg.cacheEntries, cfg.cacheDir)
	if err != nil {
		return err
	}
	metrics := obs.NewRegistry()
	// Tracing and the flight recorder stay on by default: the tracer is
	// capped (oldest spans drop) and the recorder is a fixed ring, so
	// both are safe to leave running forever.
	var tracer *obs.Tracer
	if cfg.spanCap > 0 {
		tracer = obs.NewTracer(obs.WallClock{})
		tracer.SetCap(cfg.spanCap)
	}
	var recorder *obs.Recorder
	if cfg.events > 0 {
		recorder = obs.NewRecorder(cfg.events)
	}
	cache.SetRecorder(recorder)

	var runner serve.Runner = &serve.Executor{Metrics: metrics, Tracer: tracer, Recorder: recorder}
	var clusterHandler http.Handler
	var peers serve.PeerCache
	mode := "single-node"
	switch {
	case cfg.clusterSpec != "":
		nodes, err := cluster.ParseNodes(cfg.clusterSpec)
		if err != nil {
			return err
		}
		coord, err := cluster.New(cluster.Options{
			Nodes:       nodes,
			SplitFactor: cfg.split,
			Metrics:     metrics,
			Recorder:    recorder,
		})
		if err != nil {
			return err
		}
		runner = coord
		clusterHandler = &cluster.MetricsHandler{Nodes: nodes, Self: metrics, SelfName: "coordinator"}
		mode = fmt.Sprintf("coordinator over %d nodes", len(nodes))
	case cfg.nodeName != "":
		if cfg.peersSpec == "" {
			return errors.New("-node requires -peers (the cluster membership)")
		}
		nodes, err := cluster.ParseNodes(cfg.peersSpec)
		if err != nil {
			return err
		}
		if _, ok := nodes[cfg.nodeName]; !ok {
			return fmt.Errorf("-node %s is not in -peers", cfg.nodeName)
		}
		names := make([]string, 0, len(nodes))
		for name := range nodes {
			names = append(names, name)
		}
		p := cluster.NewPeers(cfg.nodeName)
		p.Connect(chash.New(names...), nodes)
		peers = p
		mode = fmt.Sprintf("worker %s in a %d-node cache tier", cfg.nodeName, len(nodes))
	}

	sched := serve.NewScheduler(serve.SchedulerOptions{
		Workers:    cfg.workers,
		QueueDepth: cfg.queue,
		JobTimeout: cfg.jobTimeout,
		Cache:      cache,
		Executor:   runner,
		Metrics:    metrics,
		Tracer:     tracer,
		Recorder:   recorder,
		Peers:      peers,
	})
	srv := &http.Server{Addr: cfg.addr, Handler: serve.NewServer(sched, serve.ServerOptions{
		Metrics:  metrics,
		Recorder: recorder,
		Version:  buildinfo.Get().String(),
		Cluster:  clusterHandler,
	})}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("crossd: listening on %s (workers=%d queue=%d, %s)\n", cfg.addr, cfg.workers, cfg.queue, mode)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop admission first (new submissions get 503
	// from the still-listening server), let in-flight jobs finish, then
	// close the listener.
	fmt.Println("crossd: draining (in-flight jobs will finish)")
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drainGrace)
	defer cancel()
	sched.Drain(drainCtx)

	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	fmt.Println("crossd: drained, exiting")
	return nil
}
