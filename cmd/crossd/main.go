// Command crossd is the long-running differential-testing service: it
// accepts cross-system test jobs over HTTP — Figure-6 corpus runs,
// -conf configuration sweeps, fuzz campaigns identified by (seed, n),
// and version-skew matrix runs over writer->reader version pairs —
// executes them on a shared bounded worker pool over the §8 harness,
// and content-addresses the results. A job's spec is
// hashed; completed reports are stored in an LRU + disk cache, so an
// identical submission is served without re-executing a single case.
//
// Usage:
//
//	crossd [-addr :8731] [-workers N] [-queue N] [-job-timeout DUR]
//	       [-cache-entries N] [-cache-dir DIR] [-drain-grace DUR]
//
// API:
//
//	POST /api/v1/jobs             submit a job spec (202 accepted,
//	                              200 cache hit, 429 queue full + Retry-After,
//	                              503 draining)
//	GET  /api/v1/jobs             list jobs
//	GET  /api/v1/jobs/{id}        job status
//	GET  /api/v1/jobs/{id}/result completed report (byte-identical on cache hits)
//	GET  /api/v1/jobs/{id}/stream NDJSON failure stream + terminal event
//	GET  /metrics                 Prometheus text exposition (stage
//	                              histograms carry exemplar trace IDs)
//	GET  /healthz                 readiness + build version (503 while draining)
//	GET  /debug/events            flight-recorder replay (?job=ID, ?n=N)
//	GET  /debug/pprof/...         live profiling (net/http/pprof)
//
// On SIGTERM/SIGINT crossd stops admitting jobs, lets queued and
// in-flight jobs finish (up to -drain-grace, then cancels them), and
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8731", "listen address")
	workers := flag.Int("workers", 2, "concurrent job executors")
	queue := flag.Int("queue", 16, "admission queue depth (submissions past it get 429)")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "per-job execution bound (0 = none)")
	cacheEntries := flag.Int("cache-entries", 128, "in-memory result cache entries (LRU)")
	cacheDir := flag.String("cache-dir", "", "spill cached results to this directory (survives restarts)")
	drainGrace := flag.Duration("drain-grace", 30*time.Second, "how long to let in-flight jobs finish on shutdown")
	events := flag.Int("events", 1024, "flight-recorder ring size (0 disables /debug/events)")
	spanCap := flag.Int("span-cap", 4096, "retained trace spans (0 disables tracing)")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *version {
		fmt.Printf("crossd %s\n", buildinfo.Get())
		return
	}

	if err := run(*addr, *workers, *queue, *jobTimeout, *cacheEntries, *cacheDir, *drainGrace, *events, *spanCap); err != nil {
		fmt.Fprintf(os.Stderr, "crossd: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, workers, queue int, jobTimeout time.Duration, cacheEntries int, cacheDir string, drainGrace time.Duration, events, spanCap int) error {
	cache, err := serve.NewCache(cacheEntries, cacheDir)
	if err != nil {
		return err
	}
	metrics := obs.NewRegistry()
	// Tracing and the flight recorder stay on by default: the tracer is
	// capped (oldest spans drop) and the recorder is a fixed ring, so
	// both are safe to leave running forever.
	var tracer *obs.Tracer
	if spanCap > 0 {
		tracer = obs.NewTracer(obs.WallClock{})
		tracer.SetCap(spanCap)
	}
	var recorder *obs.Recorder
	if events > 0 {
		recorder = obs.NewRecorder(events)
	}
	cache.SetRecorder(recorder)
	sched := serve.NewScheduler(serve.SchedulerOptions{
		Workers:    workers,
		QueueDepth: queue,
		JobTimeout: jobTimeout,
		Cache:      cache,
		Executor:   &serve.Executor{Metrics: metrics, Tracer: tracer, Recorder: recorder},
		Metrics:    metrics,
		Tracer:     tracer,
		Recorder:   recorder,
	})
	srv := &http.Server{Addr: addr, Handler: serve.NewServer(sched, serve.ServerOptions{
		Metrics:  metrics,
		Recorder: recorder,
		Version:  buildinfo.Get().String(),
	})}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("crossd: listening on %s (workers=%d queue=%d)\n", addr, workers, queue)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop admission first (new submissions get 503
	// from the still-listening server), let in-flight jobs finish, then
	// close the listener.
	fmt.Println("crossd: draining (in-flight jobs will finish)")
	drainCtx, cancel := context.WithTimeout(context.Background(), drainGrace)
	defer cancel()
	sched.Drain(drainCtx)

	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	fmt.Println("crossd: drained, exiting")
	return nil
}
