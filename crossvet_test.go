// Crossvet's determinism regression: the linter must obey the
// contract it enforces. Two full runs over the module — separate
// loads, separate file sets — must render byte-identical reports with
// the same sha256 fingerprint, the same reproducibility bar the
// campaign and partition reports are held to.
package repro_test

import (
	"testing"

	"repro/internal/lint"
)

func crossvetRun(t *testing.T) *lint.Report {
	t.Helper()
	m, err := lint.LoadModule(".")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	rep, err := lint.Run(m, lint.DefaultConfig())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return rep
}

func TestCrossvetDeterministic(t *testing.T) {
	a := crossvetRun(t)
	b := crossvetRun(t)
	if a.Hash != b.Hash {
		t.Errorf("report hash differs across runs: %s vs %s", a.Hash, b.Hash)
	}
	if ra, rb := a.Render(true), b.Render(true); ra != rb {
		t.Errorf("rendered report differs across runs:\n--- first\n%s--- second\n%s", ra, rb)
	}
	if a.Canonical() != b.Canonical() {
		t.Error("canonical body differs across runs")
	}
}
